// Reusable net-reachability dataflow over the Netlist graph.
//
// Every structural lint rule is some flavour of "which nets can a marked
// set of nets reach (or be reached from), where propagation through a cell
// is rule-specific".  This framework factors that out: a Transfer
// predicate decides, per (cell, input pin, output pin), whether a mark
// crosses the cell; reach_forward()/reach_backward() run the worklist.
// Cycles are fine (visited-set semantics), so the pass is safe on
// netlists that would make topo_order() throw.
//
// Uses in src/lint:
//   * static X-reachability (SCPG004): forward from gated-driven nets,
//     blocked at isolation clamps and at sequential elements;
//   * clock-tree identification (SCPG002): backward from flip-flop CK
//     pins through combinational cells.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace scpg::lint {

/// Does a mark propagate through `cell` from input pin `in_pin` to output
/// pin `out_pin`?  (For backward passes the walk direction flips but the
/// question — and the pin numbering — stays the same.)
using Transfer =
    std::function<bool(const Netlist&, CellId, int in_pin, int out_pin)>;

/// Per-net reachability mask plus provenance: `from[n]` is the net whose
/// mark reached `n` (invalid for seeds and unreached nets), letting rules
/// walk an example path back to a seed for the diagnostic message.
struct ReachResult {
  std::vector<bool> net;    ///< size num_nets; true = reached
  std::vector<NetId> from;  ///< predecessor net in the reach walk

  [[nodiscard]] bool reached(NetId id) const { return net[id.v]; }

  /// Walks provenance back to the seed: {id, ..., seed}.
  [[nodiscard]] std::vector<NetId> trace(NetId id) const;
};

/// Marks `seeds` and propagates through cells in driver->sink direction.
[[nodiscard]] ReachResult reach_forward(const Netlist& nl,
                                        std::span<const NetId> seeds,
                                        const Transfer& transfer);

/// Marks `seeds` and propagates sink->driver (fanin cones).
[[nodiscard]] ReachResult reach_backward(const Netlist& nl,
                                         std::span<const NetId> seeds,
                                         const Transfer& transfer);

/// Transfer that crosses every cell unconditionally.
[[nodiscard]] Transfer transfer_all();

/// Transfer that crosses combinational cells only (blocked at flip-flops,
/// headers; macros count as combinational read paths).
[[nodiscard]] Transfer transfer_combinational();

} // namespace scpg::lint
