// Activity-based static power analysis.
//
// The paper estimates power by feeding Modelsim VCD activity into Synopsys
// PrimeTime-PX; this module is the equivalent: given per-net toggle counts
// from a simulation (ActivityRecorder) and a clock frequency, it computes
// average switching, internal and leakage power at a corner.  It is the
// fast estimator; the event-driven simulator's integrated tally is the
// reference (the two are cross-validated in the tests).
#pragma once

#include <iosfwd>

#include "netlist/netlist.hpp"
#include "sim/activity.hpp"
#include "tech/tech_model.hpp"

namespace scpg {

struct PowerBreakdown {
  Power switching{};  ///< 0.5 C V^2 f * toggle rate over all nets
  Power internal{};   ///< cell internal energy * output toggle rate
  Power leakage{};    ///< state-averaged static power
  Power macro{};      ///< macro access energy * access rate

  [[nodiscard]] Power total() const {
    return switching + internal + leakage + macro;
  }
};

/// State-averaged leakage of every always-powered cell at a corner
/// (headers contribute their OFF leakage only if `headers_off`).
[[nodiscard]] Power static_leakage(const Netlist& nl, Corner corner,
                                   bool headers_off = false);

/// Average power from recorded activity at a clock frequency.
[[nodiscard]] PowerBreakdown analyze_power(const Netlist& nl, Corner corner,
                                           const ActivityRecorder& activity,
                                           Frequency clock);

/// Printable report.
void print_power(const PowerBreakdown& p, std::ostream& os,
                 const std::string& title = {});

} // namespace scpg
