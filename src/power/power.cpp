#include "power/power.hpp"

#include <iomanip>
#include <ostream>

#include "util/error.hpp"

namespace scpg {

Power static_leakage(const Netlist& nl, Corner corner, bool headers_off) {
  const double lscale = nl.lib().tech().leak_scale(corner);
  Power p{};
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    if (c.is_macro()) {
      p += nl.macro_spec(c.macro).leakage * lscale;
      continue;
    }
    const CellSpec& s = nl.spec_of(id);
    if (s.kind == CellKind::Header) {
      if (headers_off) p += s.header_off_leak * lscale;
      continue;
    }
    p += s.leakage * lscale;
  }
  return p;
}

PowerBreakdown analyze_power(const Netlist& nl, Corner corner,
                             const ActivityRecorder& activity,
                             Frequency clock) {
  SCPG_REQUIRE(activity.cycles() > 0, "activity has no recorded cycles");
  const TechModel& tech = nl.lib().tech();
  const double escale = tech.energy_scale(corner);
  const double vdd = corner.vdd.v;
  const double cycles = double(activity.cycles());

  PowerBreakdown out;
  out.leakage = static_leakage(nl, corner);

  for (std::uint32_t ni = 0; ni < nl.num_nets(); ++ni) {
    const NetId net{ni};
    const double rate = double(activity.toggles(net)) / cycles * clock.v;
    if (rate == 0.0) continue;
    out.switching += Power{0.5 * nl.net_load(net).v * vdd * vdd * rate};
    const Net& n = nl.net(net);
    if (n.driven_by_cell()) {
      const Cell& d = nl.cell(n.driver_cell);
      if (d.is_macro())
        out.macro += Power{
            nl.macro_spec(d.macro).energy_per_access.v * escale * rate};
      else
        out.internal += Power{
            nl.spec_of(n.driver_cell).internal_energy.v * escale * rate};
    }
  }
  return out;
}

void print_power(const PowerBreakdown& p, std::ostream& os,
                 const std::string& title) {
  if (!title.empty()) os << title << '\n';
  os << std::fixed << std::setprecision(3);
  os << "  switching: " << in_uW(p.switching) << " uW\n";
  os << "  internal:  " << in_uW(p.internal) << " uW\n";
  os << "  macro:     " << in_uW(p.macro) << " uW\n";
  os << "  leakage:   " << in_uW(p.leakage) << " uW\n";
  os << "  total:     " << in_uW(p.total()) << " uW\n";
}

} // namespace scpg
