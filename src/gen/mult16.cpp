#include "gen/mult16.hpp"

#include "gen/arith.hpp"
#include "util/error.hpp"

namespace scpg::gen {

Bus multiplier_array(Builder& b, const Bus& a, const Bus& x) {
  SCPG_REQUIRE(a.size() == x.size() && a.size() >= 2,
               "multiplier operands must be equal width >= 2");
  const std::size_t w = a.size();
  Bus p(2 * w);

  // Partial products pp[i][j] = a[j] & x[i], weight i + j.
  auto pp = [&](std::size_t i, std::size_t j) { return b.AND(a[j], x[i]); };

  // Row 0 initialises the running carry-save state: sum[j] has weight j.
  Bus sum(w);
  for (std::size_t j = 0; j < w; ++j) sum[j] = pp(0, j);
  Bus carry; // carry[j] has weight i + j + 1 after processing row i
  p[0] = sum[0];

  for (std::size_t i = 1; i < w; ++i) {
    Bus nsum(w), ncarry(w);
    for (std::size_t j = 0; j < w; ++j) {
      const NetId pij = pp(i, j);
      // sum[j+1] has weight (i-1) + (j+1) = i + j; absent for j = w-1.
      const bool have_sum = j + 1 < w;
      const bool have_carry = !carry.empty();
      if (have_sum && have_carry) {
        const AddBit fa = full_adder(b, pij, sum[j + 1], carry[j]);
        nsum[j] = fa.sum;
        ncarry[j] = fa.carry;
      } else if (have_sum || have_carry) {
        const AddBit ha =
            half_adder(b, pij, have_sum ? sum[j + 1] : carry[j]);
        nsum[j] = ha.sum;
        ncarry[j] = ha.carry;
      } else {
        nsum[j] = pij;
        ncarry[j] = b.tie_lo();
      }
    }
    sum = std::move(nsum);
    carry = std::move(ncarry);
    p[i] = sum[0];
  }

  // Final merge: weights w .. 2w-1 from sum[1..w-1] and carry[0..w-1].
  NetId c; // invalid = 0
  for (std::size_t j = 0; j < w; ++j) {
    const bool have_sum = j + 1 < w;
    NetId s_in = have_sum ? sum[j + 1] : NetId{};
    if (s_in.valid() && c.valid()) {
      const AddBit fa = full_adder(b, s_in, carry[j], c);
      p[w + j] = fa.sum;
      c = fa.carry;
    } else if (s_in.valid() || c.valid()) {
      const AddBit ha = half_adder(b, carry[j], s_in.valid() ? s_in : c);
      p[w + j] = ha.sum;
      c = ha.carry;
    } else {
      p[w + j] = carry[j];
      c = NetId{};
    }
  }
  return p;
}

Netlist make_multiplier(const Library& lib, int width) {
  SCPG_REQUIRE(width >= 2 && width <= 32, "width must be in [2, 32]");
  Netlist nl("mult" + std::to_string(width), lib);
  Builder b(nl);

  const NetId clk = b.input("clk");
  const Bus a_in = b.input_bus("a", width);
  const Bus b_in = b.input_bus("b", width);

  // Always-on operand registers feed the gated combinational array.
  const Bus a_reg = b.dff_bus(a_in, clk);
  const Bus b_reg = b.dff_bus(b_in, clk);
  const Bus prod = multiplier_array(b, a_reg, b_reg);
  const Bus p_reg = b.dff_bus(prod, clk);
  b.output_bus("p", p_reg);

  nl.check();
  return nl;
}

} // namespace scpg::gen
