#include "gen/arith.hpp"

#include "util/error.hpp"

namespace scpg::gen {

AddBit half_adder(Builder& b, NetId x, NetId y) {
  return {b.XOR(x, y), b.AND(x, y)};
}

AddBit full_adder(Builder& b, NetId x, NetId y, NetId cin) {
  const NetId t = b.XOR(x, y);
  const NetId sum = b.XOR(t, cin);
  const NetId c1 = b.AND(x, y);
  const NetId c2 = b.AND(t, cin);
  return {sum, b.OR(c1, c2)};
}

AddResult ripple_add(Builder& b, const Bus& x, const Bus& y, NetId cin) {
  SCPG_REQUIRE(x.size() == y.size() && !x.empty(),
               "adder operands must be equal, non-zero width");
  AddResult r;
  r.sum.resize(x.size());
  NetId c = cin;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const AddBit bit = c.valid() ? full_adder(b, x[i], y[i], c)
                                 : half_adder(b, x[i], y[i]);
    r.sum[i] = bit.sum;
    c = bit.carry;
  }
  r.carry = c;
  return r;
}

AddResult carry_select_add(Builder& b, const Bus& x, const Bus& y, NetId cin,
                           int block) {
  SCPG_REQUIRE(x.size() == y.size() && !x.empty(),
               "adder operands must be equal, non-zero width");
  SCPG_REQUIRE(block >= 1, "block size must be positive");
  AddResult r;
  r.sum.resize(x.size());
  // First block rippled directly from cin.
  NetId c = cin;
  const std::size_t first = std::min(std::size_t(block), x.size());
  for (std::size_t i = 0; i < first; ++i) {
    const AddBit bit = c.valid() ? full_adder(b, x[i], y[i], c)
                                 : half_adder(b, x[i], y[i]);
    r.sum[i] = bit.sum;
    c = bit.carry;
  }
  // Subsequent blocks: compute both carry-in polarities, select by the
  // incoming carry.
  for (std::size_t base = first; base < x.size(); base += std::size_t(block)) {
    const std::size_t end = std::min(base + std::size_t(block), x.size());
    const NetId zero = b.tie_lo();
    const NetId one = b.tie_hi();
    NetId c0 = zero, c1 = one;
    std::vector<NetId> s0(end - base), s1(end - base);
    for (std::size_t i = base; i < end; ++i) {
      const AddBit b0 = full_adder(b, x[i], y[i], c0);
      const AddBit b1 = full_adder(b, x[i], y[i], c1);
      s0[i - base] = b0.sum;
      s1[i - base] = b1.sum;
      c0 = b0.carry;
      c1 = b1.carry;
    }
    for (std::size_t i = base; i < end; ++i)
      r.sum[i] = b.MUX(s0[i - base], s1[i - base], c);
    c = b.MUX(c0, c1, c);
  }
  r.carry = c;
  return r;
}

AddResult subtract(Builder& b, const Bus& x, const Bus& y) {
  return ripple_add(b, x, b.not_bus(y), b.tie_hi());
}

Bus increment(Builder& b, const Bus& x) {
  // Half-adder chain with carry-in 1: sum_i = x_i ^ c, c' = x_i & c.
  Bus out(x.size());
  NetId c = b.tie_hi();
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = b.XOR(x[i], c);
    if (i + 1 < x.size()) c = b.AND(x[i], c);
  }
  return out;
}

CompareResult compare(Builder& b, const Bus& x, const Bus& y) {
  const AddResult d = subtract(b, x, y);
  CompareResult r;
  r.eq = b.NOT(b.reduce_or(d.sum));
  r.lt = b.NOT(d.carry); // borrow
  return r;
}

} // namespace scpg::gen
