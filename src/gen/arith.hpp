// Arithmetic circuit generators (gate-level).
//
// These produce the datapath pieces of the two case studies: half/full
// adders, ripple-carry and carry-select adders, subtract/compare, and
// incrementers.  All functions append cells to the Builder's netlist and
// return the result nets; buses are LSB-first.
#pragma once

#include "netlist/builder.hpp"

namespace scpg::gen {

struct AddBit {
  NetId sum;
  NetId carry;
};

/// sum = a ^ b, carry = a & b.
[[nodiscard]] AddBit half_adder(Builder& b, NetId x, NetId y);

/// Full adder from 2 XOR + 2 AND + 1 OR.
[[nodiscard]] AddBit full_adder(Builder& b, NetId x, NetId y, NetId cin);

struct AddResult {
  Bus sum;     ///< same width as the operands
  NetId carry; ///< carry out of the MSB
};

/// Ripple-carry adder; operands must have equal width.  `cin` may be
/// invalid (treated as 0, using a half adder in the LSB).
[[nodiscard]] AddResult ripple_add(Builder& b, const Bus& x, const Bus& y,
                                   NetId cin = {});

/// Carry-select adder with `block` wide ripple blocks (default 4): both
/// carry polarities are computed per block and muxed, trading area for a
/// much shorter critical path — used by the CPU ALU.
[[nodiscard]] AddResult carry_select_add(Builder& b, const Bus& x,
                                         const Bus& y, NetId cin = {},
                                         int block = 4);

/// x - y  (two's complement: x + ~y + 1); carry is the NOT-borrow.
[[nodiscard]] AddResult subtract(Builder& b, const Bus& x, const Bus& y);

/// x + 1.
[[nodiscard]] Bus increment(Builder& b, const Bus& x);

struct CompareResult {
  NetId eq; ///< x == y
  NetId lt; ///< x < y (unsigned)
};

/// Unsigned comparison via a subtractor.
[[nodiscard]] CompareResult compare(Builder& b, const Bus& x, const Bus& y);

} // namespace scpg::gen
