// Structural building blocks shared by the case studies: decoders,
// wide muxes, barrel shifters and register files.
#pragma once

#include "netlist/builder.hpp"

namespace scpg::gen {

/// One-hot decoder: output k is high iff sel == k.  Output width 2^sel.size().
[[nodiscard]] Bus decoder(Builder& b, const Bus& sel);

/// N-way mux tree over equal-width buses; sel is binary, LSB first.
/// choices.size() must be a power of two equal to 2^sel.size().
[[nodiscard]] Bus mux_tree(Builder& b, const std::vector<Bus>& choices,
                           const Bus& sel);

/// Logical left shift by a variable amount (sel bits select 1,2,4,... stages).
[[nodiscard]] Bus shift_left(Builder& b, const Bus& x, const Bus& amount);

/// Logical right shift.
[[nodiscard]] Bus shift_right(Builder& b, const Bus& x, const Bus& amount);

/// Synchronous register file built from flip-flops and muxes.
struct RegisterFile {
  std::vector<Bus> q; ///< current value of every register (flop outputs)
  Bus rd_a;           ///< read port A data
  Bus rd_b;           ///< read port B data
};

/// `regs` must be a power of two (= 2^waddr.size()).  Write is
/// enable-gated through a per-bit recirculating mux; reads are
/// combinational mux trees.
[[nodiscard]] RegisterFile register_file(Builder& b, int regs, int width,
                                         NetId clk, const Bus& waddr,
                                         const Bus& wdata, NetId wen,
                                         const Bus& raddr_a,
                                         const Bus& raddr_b);

} // namespace scpg::gen
