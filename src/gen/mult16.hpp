// 16-bit parallel binary multiplier (case study 1, paper §III-A).
//
// A classic carry-save array multiplier: 256 partial-product AND gates,
// 15 rows of carry-save adders, and a final ripple-carry merge.  The top
// level registers both operands and the product, matching the paper's
// architecture where the combinational array is fed from and captured by
// always-on registers (Fig 2) — the array is the power-gated domain.
#pragma once

#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"

namespace scpg::gen {

/// Appends the unregistered multiplier array to a builder; returns the
/// 2*width product bus.  Used directly by tests and inside the top level.
[[nodiscard]] Bus multiplier_array(Builder& b, const Bus& a, const Bus& x);

/// Builds the complete registered multiplier design:
/// ports clk, a[width], b[width] -> p[2*width].
[[nodiscard]] Netlist make_multiplier(const Library& lib, int width = 16);

} // namespace scpg::gen
