#include "gen/components.hpp"

#include "util/error.hpp"

namespace scpg::gen {

Bus decoder(Builder& b, const Bus& sel) {
  SCPG_REQUIRE(!sel.empty() && sel.size() <= 8, "decoder select width");
  const std::size_t n = std::size_t(1) << sel.size();
  Bus out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = b.equal_const(sel, k);
  return out;
}

Bus mux_tree(Builder& b, const std::vector<Bus>& choices, const Bus& sel) {
  SCPG_REQUIRE(!choices.empty(), "mux tree needs choices");
  SCPG_REQUIRE(choices.size() == (std::size_t(1) << sel.size()),
               "mux tree requires 2^sel choices");
  std::vector<Bus> level = choices;
  for (std::size_t s = 0; s < sel.size(); ++s) {
    std::vector<Bus> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(b.mux_bus(level[i], level[i + 1], sel[s]));
    level = std::move(next);
  }
  return level[0];
}

Bus shift_left(Builder& b, const Bus& x, const Bus& amount) {
  Bus cur = x;
  const NetId zero = b.tie_lo();
  for (std::size_t s = 0; s < amount.size(); ++s) {
    const std::size_t k = std::size_t(1) << s;
    Bus shifted(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i)
      shifted[i] = i >= k ? cur[i - k] : zero;
    cur = b.mux_bus(cur, shifted, amount[s]);
  }
  return cur;
}

Bus shift_right(Builder& b, const Bus& x, const Bus& amount) {
  Bus cur = x;
  const NetId zero = b.tie_lo();
  for (std::size_t s = 0; s < amount.size(); ++s) {
    const std::size_t k = std::size_t(1) << s;
    Bus shifted(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i)
      shifted[i] = i + k < cur.size() ? cur[i + k] : zero;
    cur = b.mux_bus(cur, shifted, amount[s]);
  }
  return cur;
}

RegisterFile register_file(Builder& b, int regs, int width, NetId clk,
                           const Bus& waddr, const Bus& wdata, NetId wen,
                           const Bus& raddr_a, const Bus& raddr_b) {
  SCPG_REQUIRE(regs >= 2 && (regs & (regs - 1)) == 0,
               "register count must be a power of two");
  SCPG_REQUIRE(int(wdata.size()) == width, "write data width mismatch");
  SCPG_REQUIRE((std::size_t(1) << waddr.size()) == std::size_t(regs),
               "write address width mismatch");

  const Bus onehot = decoder(b, waddr);
  RegisterFile rf;
  rf.q.resize(std::size_t(regs));
  for (int r = 0; r < regs; ++r) {
    const NetId we_r = b.AND(wen, onehot[std::size_t(r)]);
    Bus& q = rf.q[std::size_t(r)];
    q.resize(std::size_t(width));
    // Recirculating mux per bit: hold unless this register is written.
    // The flop is created first so the mux can reference its output.
    for (int bit = 0; bit < width; ++bit) {
      // Build as: q = DFF(mux(q, wdata, we_r)); requires a forward
      // reference, so allocate the q net explicitly.
      NetId qn = b.netlist().add_net("rf_r" + std::to_string(r) + "_b" +
                                     std::to_string(bit));
      const NetId dn = b.MUX(qn, wdata[std::size_t(bit)], we_r);
      const SpecId dff = b.lib().pick(CellKind::Dff, 1);
      b.netlist().add_cell("rf_ff_" + std::to_string(r) + "_" +
                               std::to_string(bit),
                           dff, {dn, clk}, qn);
      q[std::size_t(bit)] = qn;
    }
  }
  rf.rd_a = mux_tree(b, rf.q, raddr_a);
  rf.rd_b = mux_tree(b, rf.q, raddr_b);
  return rf;
}

} // namespace scpg::gen
