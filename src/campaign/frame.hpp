// CRC-framed JSON envelope lines: the one wire/disk format of the
// campaign subsystem.
//
// Both transports a campaign runs on — the coordinator<->worker pipe
// protocol and the write-ahead journal — carry the same unit: one frame
// per line,
//
//   SCPGF1 <crc32:8 lowercase hex> <envelope-json>\n
//
// where <envelope-json> is the PR-5 versioned envelope
// {"schema_version":1,"tool":"scpgc-campaign","payload":{...}} rendered
// compact (never containing a raw newline) and the CRC-32 (IEEE) covers
// exactly the envelope text.  A frame is accepted only when the magic,
// the CRC, the JSON, the envelope version and the tool name all check
// out; anything else is a located ParseError naming the source (journal
// path or pipe label) and 1-based line — corrupted bytes can requeue a
// worker's range or fail a resume loudly, but never crash the
// coordinator or silently skew a result.
//
// Numeric payload fields that must survive the trip bit-exactly (energy
// tallies, digests) travel as 16-digit lowercase hex of their 64-bit
// pattern: the determinism contract ("resumed == uninterrupted, byte for
// byte") must not hinge on decimal round-tripping.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace scpg::campaign {

/// Tool name stamped into every frame envelope by default.  Other
/// subsystems that reuse this codec for their own files pass their own
/// tool name (src/serve's disk cache uses "scpgc-cache"), so a file of
/// one kind fed to a reader of another rejects at the first frame.
inline constexpr std::string_view kFrameTool = "scpgc-campaign";

/// CRC-32 (IEEE 802.3, reflected) of `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Wraps a compact payload object in the envelope and frames it.  The
/// result ends in exactly one '\n'.  `payload_json` must be a valid
/// compact JSON object (no raw newlines).
[[nodiscard]] std::string encode_frame(std::string_view payload_json,
                                       std::string_view tool = kFrameTool);

/// Decodes one line (without its trailing '\n'): checks magic, CRC and
/// envelope, and returns the parsed payload.  Throws ParseError with
/// `source`:`line` on any malformation, including an envelope whose tool
/// name differs from `tool`.
[[nodiscard]] json::Value decode_frame(std::string_view line,
                                       const std::string& source, int lineno,
                                       std::string_view tool = kFrameTool);

/// 16-digit lowercase hex of a 64-bit value (bit-exact transport).
[[nodiscard]] std::string hex64(std::uint64_t v);

/// Inverse of hex64; throws ParseError on malformed input.
[[nodiscard]] std::uint64_t parse_hex64(std::string_view s,
                                        const std::string& source, int lineno);

/// Bit-pattern helpers for doubles carried through hex64.
[[nodiscard]] std::uint64_t double_bits(double v);
[[nodiscard]] double bits_double(std::uint64_t bits);

} // namespace scpg::campaign
