// CampaignSpec: the process-portable description of a sweep campaign.
//
// A SweepSpec cannot cross a process boundary — it holds Netlist
// pointers and stimulus closures.  A CampaignSpec is the closed,
// serializable subset a campaign runs on: a netlist *path* plus the
// scalar knobs of the standard measured sweep (corner, activity,
// log-spaced frequency grid, cycles, seed, clock port).  Every process
// that holds the same CampaignSpec and the same netlist file expands —
// via build_campaign() — the same designs, the same point list in the
// same order, the same per-point RNG streams, and therefore bit-identical
// measurements: that is the location independence the coordinator
// (coordinator.hpp) shards across worker processes and the journal
// (journal.hpp) resumes from.
//
// The campaign digest binds a journal or a worker to its campaign: it
// hashes the canonical spec JSON and the structural digests of both
// expanded designs, so a resumed run against an edited netlist or a
// re-flagged grid is rejected instead of silently mixing measurements.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/sweep.hpp"
#include "netlist/netlist.hpp"
#include "util/json.hpp"

namespace scpg {
class ScpgPowerModel;
}

namespace scpg::campaign {

struct CampaignSpec {
  std::string netlist_path;
  double vdd{0.6};
  double temp_c{25.0};
  double activity{0.15};
  double fmax_mhz{10.0};
  int points{12}; ///< frequency grid size (>= 2)
  int cycles{12};
  std::uint64_t seed{1};
  std::string clock_port{"clk"};
  /// Simulation backend for every row.  Part of the campaign identity
  /// (compiled power differs from event at glitch granularity), but only
  /// serialized when non-default so existing journals keep their digests.
  sim::Backend backend{sim::Backend::Event};
};

/// Canonical compact JSON (one line, fixed key order); the digest hashes
/// this text, so the rendering is part of the on-disk format.
[[nodiscard]] std::string to_json(const CampaignSpec& spec);

/// Inverse of to_json; throws ParseError (with source/line) on missing
/// or ill-typed fields.
[[nodiscard]] CampaignSpec spec_from_json(const json::Value& v,
                                          const std::string& source,
                                          int lineno);

/// A fully expanded campaign: both designs (the measured no-gating
/// reference and the SCPG-transformed netlist), the Experiment whose
/// rows the campaign shards, and the campaign digest.  Move-only; the
/// Experiment's SweepSpec points into the owned netlists.
struct CampaignPlan {
  // Out of line: the model member is incomplete here.
  CampaignPlan();
  ~CampaignPlan();
  CampaignPlan(CampaignPlan&&) noexcept;
  CampaignPlan& operator=(CampaignPlan&&) noexcept;

  CampaignSpec spec;
  std::unique_ptr<Netlist> original;
  std::unique_ptr<Netlist> gated;
  std::unique_ptr<engine::Experiment> experiment;
  /// The analytic model the grid's feasibility gating used; consumers
  /// (scpgc sweep's table, src/serve's renderer) query it for the
  /// model-column values of the same rows.
  std::unique_ptr<ScpgPowerModel> model;
  bool already_gated{false}; ///< the input netlist came pre-gated
  std::uint64_t digest{0};
  std::string design_name;

  [[nodiscard]] const std::vector<engine::OperatingPoint>& points() const {
    return experiment->points();
  }
};

/// Loads the netlist, applies SCPG when the input is not already gated,
/// and builds the canonical measured sweep: rows "n:i" (no gating) and
/// "g:i" (SCPG at 50% duty, when feasible at that frequency) over the
/// log-spaced grid — the same grid `scpgc sweep`'s measured columns use.
/// Deterministic: equal spec + equal file bytes => equal plan.  `jobs`
/// and `cache` configure the embedded Experiment's execution policy
/// only; they do not change the plan, its digest, or any measurement.
[[nodiscard]] CampaignPlan build_campaign(const Library& lib,
                                          const CampaignSpec& spec,
                                          int jobs = 1,
                                          engine::ResultCache* cache = nullptr);

/// Appends the canonical measured grid for `spec` onto `sweep` with
/// `seed` in place of spec.seed and every tag prefixed by `tag_prefix`
/// ("<prefix>n:i" / "<prefix>g:i").  This is the one definition of the
/// grid — build_campaign() uses it with an empty prefix, and src/serve
/// appends one prefixed copy per coalesced request so seed-axis rows
/// from different clients pack into the compiled backend's bit-parallel
/// units.  `sweep` must already carry designs 0 (original) and 1 (gated)
/// and the shared fixture; `model` and `already_gated` must come from
/// the same netlist the sweep's designs hold.
void append_campaign_grid(engine::SweepSpec& sweep, const CampaignSpec& spec,
                          const ScpgPowerModel& model, bool already_gated,
                          std::uint64_t seed, const std::string& tag_prefix);

/// Vector-less random stimulus shared by `scpgc sweep` and campaigns:
/// every data input bit is re-driven with probability `activity` per
/// cycle from the point's RNG stream.  Declarative (every backend can
/// run it); the embedded cache key is "scpgc:rand:a=<activity>" so sweep
/// and campaign share cache entries.
[[nodiscard]] sim::StimulusSpec random_stimulus(double activity,
                                                std::string clock_port);
[[nodiscard]] std::string random_stimulus_key(double activity);

/// Vector-less dynamic energy estimate: every net toggles with
/// probability `activity` per cycle (feeds the analytic feasibility
/// model that decides which "g:i" rows exist).
[[nodiscard]] Energy estimate_dynamic_energy(const Netlist& nl, Corner c,
                                             double activity);

} // namespace scpg::campaign
