// Campaign worker: one subprocess, one stdin/stdout frame stream.
//
// The protocol is stop-and-wait, every message a frame (frame.hpp):
//
//   coordinator -> worker   {"kind":"init", "spec":{...}, "campaign":H,
//                            "heartbeat_ms":N [, "crash_at_row":R]}
//                           {"kind":"assign", "first":I, "count":N}
//                           {"kind":"shutdown"}
//   worker -> coordinator   {"kind":"hello", "campaign":H}
//                           {"kind":"heartbeat"}
//                           {"kind":"point", ...journal entry fields...}
//                           {"kind":"done", "first":I, "count":N}
//
// The worker receives the campaign *spec*, not the expanded points: it
// rebuilds the plan itself (build_campaign is deterministic) and proves
// it by echoing the campaign digest in its hello — a worker running a
// different netlist or binary version is rejected before any row runs.
// Rows execute via Experiment::run_row, whose RNG streams are keyed by
// point content, so measurements are bit-identical to the in-process
// engine regardless of which worker runs which range in what order.
//
// A heartbeat thread writes a frame every heartbeat_ms under the same
// mutex as result frames, so the coordinator can tell "slow row" from
// "hung or dead worker" without parsing partial output.  crash_at_row
// is the fault-injection hook: the worker _exit(137)s immediately
// before measuring that global row, mimicking SIGKILL mid-range.
#pragma once

#include <cstdint>
#include <optional>

namespace scpg::campaign {

/// Runs the worker protocol over the two fds until shutdown or EOF.
/// Returns a process exit code (0 ok; 3 protocol/parse failure; 6
/// internal error).  Never throws.
[[nodiscard]] int worker_main(int in_fd, int out_fd);

} // namespace scpg::campaign
