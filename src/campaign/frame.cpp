#include "campaign/frame.hpp"

#include <array>
#include <bit>
#include <charconv>

#include "util/error.hpp"

namespace scpg::campaign {

namespace {

constexpr std::string_view kMagic = "SCPGF1";

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

[[noreturn]] void frame_error(const std::string& what,
                              const std::string& source, int lineno) {
  throw ParseError(what, source, lineno);
}

/// Writers emit only lowercase hex; accepting 'A'-'F' would let a
/// case-flipping corruption (bit 0x20) parse to the same value and slip
/// past the CRC check when it lands in the CRC field itself.
bool is_lower_hex(std::string_view s) {
  for (const char c : s)
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  return true;
}

} // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data)
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[std::size_t(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return s;
}

std::uint64_t parse_hex64(std::string_view s, const std::string& source,
                          int lineno) {
  if (s.size() != 16 || !is_lower_hex(s))
    frame_error("expected 16 lowercase hex digits, got \"" + std::string(s) +
                    "\"",
                source, lineno);
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc() || ptr != s.data() + s.size())
    frame_error("malformed hex field \"" + std::string(s) + "\"", source,
                lineno);
  return v;
}

std::uint64_t double_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

double bits_double(std::uint64_t bits) { return std::bit_cast<double>(bits); }

std::string encode_frame(std::string_view payload_json,
                         std::string_view tool) {
  std::string envelope = "{\"schema_version\": ";
  envelope += std::to_string(json::kSchemaVersion);
  envelope += ", \"tool\": \"";
  envelope += tool;
  envelope += "\", \"payload\": ";
  envelope += payload_json;
  envelope += "}";
  SCPG_REQUIRE(envelope.find('\n') == std::string::npos,
               "frame payload must not contain raw newlines");
  std::string out(kMagic);
  out += ' ';
  const std::uint32_t c = crc32(envelope);
  // 8 lowercase hex digits, fixed width.
  out += hex64(c).substr(8);
  out += ' ';
  out += envelope;
  out += '\n';
  return out;
}

json::Value decode_frame(std::string_view line, const std::string& source,
                         int lineno, std::string_view tool) {
  // Shape: "SCPGF1 xxxxxxxx {...}".
  if (line.size() < kMagic.size() + 1 + 8 + 1 + 2 ||
      line.substr(0, kMagic.size()) != kMagic ||
      line[kMagic.size()] != ' ')
    frame_error("not a campaign frame (bad magic)", source, lineno);
  const std::string_view crc_text = line.substr(kMagic.size() + 1, 8);
  if (line[kMagic.size() + 1 + 8] != ' ')
    frame_error("not a campaign frame (bad CRC field)", source, lineno);
  std::uint32_t want = 0;
  {
    const auto [ptr, ec] = std::from_chars(
        crc_text.data(), crc_text.data() + crc_text.size(), want, 16);
    if (ec != std::errc() || ptr != crc_text.data() + crc_text.size() ||
        !is_lower_hex(crc_text))
      frame_error("not a campaign frame (bad CRC field)", source, lineno);
  }
  const std::string_view envelope = line.substr(kMagic.size() + 1 + 8 + 1);
  const std::uint32_t got = crc32(envelope);
  if (got != want)
    frame_error("frame CRC mismatch (stored " + std::string(crc_text) +
                    ", computed " + hex64(got).substr(8) + ")",
                source, lineno);

  json::Value doc;
  try {
    doc = json::parse(envelope);
  } catch (const ParseError& e) {
    frame_error(std::string("frame JSON invalid: ") + e.what(), source,
                lineno);
  }
  const json::Value* ver = doc.get("schema_version");
  if (ver == nullptr || !ver->is(json::Value::Type::Number) ||
      int(ver->num) != json::kSchemaVersion)
    frame_error("frame envelope has wrong or missing schema_version", source,
                lineno);
  const json::Value* tool_v = doc.get("tool");
  if (tool_v == nullptr || !tool_v->is(json::Value::Type::String) ||
      tool_v->str != tool)
    frame_error("frame envelope tool is not \"" + std::string(tool) + "\"",
                source, lineno);
  const json::Value* payload = doc.get("payload");
  if (payload == nullptr || !payload->is(json::Value::Type::Object))
    frame_error("frame envelope has no payload object", source, lineno);
  return *payload;
}

} // namespace scpg::campaign
