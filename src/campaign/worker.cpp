#include "campaign/worker.hpp"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "campaign/frame.hpp"
#include "campaign/journal.hpp"
#include "campaign/spec.hpp"
#include "tech/library.hpp"
#include "util/error.hpp"
#include "util/subprocess.hpp"

namespace scpg::campaign {

namespace {

constexpr int kWorkerOk = 0;
constexpr int kWorkerParse = 3;
constexpr int kWorkerInternal = 6;

/// Blocking line reader over a raw fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next full line (without '\n'), or nullopt on EOF.
  std::optional<std::string> next() {
    for (;;) {
      const std::size_t nl = buf_.find('\n', scan_);
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        scan_ = 0;
        return line;
      }
      scan_ = buf_.size();
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      if (n == 0) return std::nullopt; // EOF: coordinator is gone
      buf_.append(chunk, std::size_t(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
  std::size_t scan_{0};
};

/// Serializes all frames onto out_fd: results from the protocol loop
/// and heartbeats from the timer thread share one mutex so frames are
/// never interleaved mid-line.
class FrameWriter {
 public:
  explicit FrameWriter(int fd) : fd_(fd) {}

  bool send(const std::string& payload) {
    const std::string frame = encode_frame(payload);
    std::lock_guard<std::mutex> lk(mu_);
    return write_all(fd_, frame);
  }

 private:
  int fd_;
  std::mutex mu_;
};

class HeartbeatThread {
 public:
  HeartbeatThread(FrameWriter& out, int period_ms) : out_(out) {
    thread_ = std::thread([this, period_ms] {
      std::unique_lock<std::mutex> lk(mu_);
      while (!stop_) {
        cv_.wait_for(lk, std::chrono::milliseconds(period_ms));
        if (stop_) break;
        out_.send("{\"kind\": \"heartbeat\"}");
      }
    });
  }

  ~HeartbeatThread() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  FrameWriter& out_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_{false};
  std::thread thread_;
};

std::size_t size_field(const json::Value& v, const char* key,
                       const std::string& source) {
  const json::Value* f = v.get(key);
  if (f == nullptr || !f->is(json::Value::Type::Number) || f->num < 0)
    throw ParseError(std::string("worker: missing or invalid \"") + key +
                         "\"",
                     source, 0);
  return std::size_t(f->num);
}

} // namespace

int worker_main(int in_fd, int out_fd) {
  ignore_sigpipe();
  const std::string source = "worker:stdin";
  LineReader in(in_fd);
  FrameWriter out(out_fd);
  try {
    // --- init ---------------------------------------------------------
    const auto init_line = in.next();
    if (!init_line) return kWorkerOk; // coordinator died before init
    int lineno = 1;
    const json::Value init = decode_frame(*init_line, source, lineno);
    const json::Value* kind = init.get("kind");
    if (kind == nullptr || !kind->is(json::Value::Type::String) ||
        kind->str != "init")
      throw ParseError("worker: first frame is not init", source, lineno);
    const json::Value* spec_json = init.get("spec");
    if (spec_json == nullptr)
      throw ParseError("worker: init has no spec", source, lineno);
    const CampaignSpec spec = spec_from_json(*spec_json, source, lineno);
    const std::uint64_t want_digest = [&] {
      const json::Value* d = init.get("campaign");
      if (d == nullptr || !d->is(json::Value::Type::String))
        throw ParseError("worker: init has no campaign digest", source,
                         lineno);
      return parse_hex64(d->str, source, lineno);
    }();
    const int heartbeat_ms = [&] {
      const json::Value* h = init.get("heartbeat_ms");
      return (h != nullptr && h->is(json::Value::Type::Number) && h->num >= 1)
                 ? int(h->num)
                 : 500;
    }();
    std::optional<std::size_t> crash_at_row;
    if (const json::Value* c = init.get("crash_at_row");
        c != nullptr && c->is(json::Value::Type::Number) && c->num >= 0)
      crash_at_row = std::size_t(c->num);

    // Heartbeats start before the plan build: netlist parsing and SCPG
    // expansion count as liveness, not silence.
    HeartbeatThread heartbeat(out, heartbeat_ms);

    const Library lib = Library::scpg90();
    const CampaignPlan plan = build_campaign(lib, spec);
    if (plan.digest != want_digest)
      throw ParseError("worker: campaign digest mismatch (coordinator " +
                           hex64(want_digest) + ", worker " +
                           hex64(plan.digest) + ")",
                       source, lineno);
    if (!out.send("{\"kind\": \"hello\", \"campaign\": \"" +
                  hex64(plan.digest) + "\"}"))
      return kWorkerOk; // coordinator already gone

    // --- assignment loop ---------------------------------------------
    for (;;) {
      const auto line = in.next();
      if (!line) return kWorkerOk; // EOF == shutdown
      ++lineno;
      const json::Value msg = decode_frame(*line, source, lineno);
      const json::Value* k = msg.get("kind");
      if (k == nullptr || !k->is(json::Value::Type::String))
        throw ParseError("worker: frame has no kind", source, lineno);
      if (k->str == "shutdown") return kWorkerOk;
      if (k->str != "assign")
        throw ParseError("worker: unexpected frame kind \"" + k->str + "\"",
                         source, lineno);
      const std::size_t first = size_field(msg, "first", source);
      const std::size_t count = size_field(msg, "count", source);
      if (first + count > plan.points().size())
        throw ParseError("worker: assigned range out of bounds", source,
                         lineno);
      for (std::size_t row = first; row < first + count; ++row) {
        if (crash_at_row && *crash_at_row == row)
          ::_exit(137); // fault injection: SIGKILL-shaped death mid-range
        const engine::PointResult r = plan.experiment->run_row(row);
        JournalEntry e;
        e.row = row;
        e.point_digest = plan.experiment->row_digest(row);
        e.m = r;
        e.cache_hit = r.cache_hit;
        if (!out.send(entry_payload(e))) return kWorkerOk;
      }
      if (!out.send("{\"kind\": \"done\", \"first\": " +
                    std::to_string(first) +
                    ", \"count\": " + std::to_string(count) + "}"))
        return kWorkerOk;
    }
  } catch (const ParseError&) {
    return kWorkerParse;
  } catch (const std::exception&) {
    return kWorkerInternal;
  }
}

} // namespace scpg::campaign
