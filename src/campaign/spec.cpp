#include "campaign/spec.hpp"

#include <cmath>
#include <fstream>

#include "campaign/frame.hpp"
#include "netlist/verilog.hpp"
#include "scpg/model.hpp"
#include "scpg/transform.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/table.hpp"

namespace scpg::campaign {

namespace {

[[noreturn]] void spec_error(const std::string& what,
                             const std::string& source, int lineno) {
  throw ParseError("campaign spec: " + what, source, lineno);
}

double num_field(const json::Value& v, const char* key,
                 const std::string& source, int lineno) {
  const json::Value* f = v.get(key);
  if (f == nullptr || !f->is(json::Value::Type::Number))
    spec_error(std::string("missing or non-numeric \"") + key + "\"", source,
               lineno);
  return f->num;
}

std::string str_field(const json::Value& v, const char* key,
                      const std::string& source, int lineno) {
  const json::Value* f = v.get(key);
  if (f == nullptr || !f->is(json::Value::Type::String))
    spec_error(std::string("missing or non-string \"") + key + "\"", source,
               lineno);
  return f->str;
}

} // namespace

CampaignPlan::CampaignPlan() = default;
CampaignPlan::~CampaignPlan() = default;
CampaignPlan::CampaignPlan(CampaignPlan&&) noexcept = default;
CampaignPlan& CampaignPlan::operator=(CampaignPlan&&) noexcept = default;

std::string to_json(const CampaignSpec& spec) {
  std::string s = "{\"netlist\": ";
  json::append_quoted(s, spec.netlist_path);
  s += ", \"vdd\": " + json::number(spec.vdd);
  s += ", \"temp_c\": " + json::number(spec.temp_c);
  s += ", \"activity\": " + json::number(spec.activity);
  s += ", \"fmax_mhz\": " + json::number(spec.fmax_mhz);
  s += ", \"points\": " + std::to_string(spec.points);
  s += ", \"cycles\": " + std::to_string(spec.cycles);
  // Hex, not a JSON number: 64-bit seeds must not round through double.
  s += ", \"seed\": \"" + hex64(spec.seed) + "\"";
  s += ", \"clock\": ";
  json::append_quoted(s, spec.clock_port);
  // Appended only when non-default: pre-backend campaign specs (and
  // their journal digests) render byte-identically.
  if (spec.backend != sim::Backend::Event) {
    s += ", \"backend\": ";
    json::append_quoted(s, std::string(sim::backend_name(spec.backend)));
  }
  s += "}";
  return s;
}

CampaignSpec spec_from_json(const json::Value& v, const std::string& source,
                            int lineno) {
  if (!v.is(json::Value::Type::Object))
    spec_error("not an object", source, lineno);
  CampaignSpec spec;
  spec.netlist_path = str_field(v, "netlist", source, lineno);
  spec.vdd = num_field(v, "vdd", source, lineno);
  spec.temp_c = num_field(v, "temp_c", source, lineno);
  spec.activity = num_field(v, "activity", source, lineno);
  spec.fmax_mhz = num_field(v, "fmax_mhz", source, lineno);
  spec.points = int(num_field(v, "points", source, lineno));
  spec.cycles = int(num_field(v, "cycles", source, lineno));
  spec.seed = parse_hex64(str_field(v, "seed", source, lineno), source, lineno);
  spec.clock_port = str_field(v, "clock", source, lineno);
  if (const json::Value* b = v.get("backend"); b != nullptr) {
    if (!b->is(json::Value::Type::String))
      spec_error("non-string \"backend\"", source, lineno);
    const auto parsed = sim::backend_from_name(b->str);
    if (!parsed)
      spec_error("unknown \"backend\" \"" + b->str + "\"", source, lineno);
    spec.backend = *parsed;
  }
  if (spec.points < 2) spec_error("\"points\" must be >= 2", source, lineno);
  if (spec.cycles < 1) spec_error("\"cycles\" must be >= 1", source, lineno);
  if (spec.fmax_mhz <= 0 || spec.vdd <= 0)
    spec_error("\"fmax_mhz\" and \"vdd\" must be positive", source, lineno);
  return spec;
}

sim::StimulusSpec random_stimulus(double activity, std::string clock_port) {
  return sim::StimulusSpec::random_inputs(activity, std::move(clock_port),
                                          random_stimulus_key(activity));
}

std::string random_stimulus_key(double activity) {
  return "scpgc:rand:a=" + TextTable::num(activity, 4);
}

Energy estimate_dynamic_energy(const Netlist& nl, Corner c, double activity) {
  const double escale = nl.lib().tech().energy_scale(c);
  double e = 0;
  for (std::uint32_t ni = 0; ni < nl.num_nets(); ++ni) {
    const NetId n{ni};
    e += 0.5 * nl.net_load(n).v * c.vdd.v * c.vdd.v;
    const Net& net = nl.net(n);
    if (net.driven_by_cell() && !nl.cell(net.driver_cell).is_macro())
      e += nl.spec_of(net.driver_cell).internal_energy.v * escale;
  }
  return Energy{e * activity};
}

void append_campaign_grid(engine::SweepSpec& sweep, const CampaignSpec& spec,
                          const ScpgPowerModel& model, bool already_gated,
                          std::uint64_t seed, const std::string& tag_prefix) {
  const Corner c{Voltage{spec.vdd}, spec.temp_c};
  for (int i = 0; i < spec.points; ++i) {
    const double f_mhz =
        spec.fmax_mhz *
        std::pow(10.0, -3.0 + 3.0 * double(i) / (spec.points - 1));
    const Frequency f{f_mhz * 1e6};
    engine::OperatingPoint pt;
    pt.f = f;
    pt.corner = c;
    pt.seed = seed;
    pt.design = already_gated ? 1 : 0;
    pt.override_gating = already_gated;
    pt.tag = tag_prefix + "n:" + std::to_string(i);
    sweep.point(pt);
    if (model.feasible(f, 0.5)) {
      pt.design = 1;
      pt.override_gating = false;
      pt.tag = tag_prefix + "g:" + std::to_string(i);
      sweep.point(pt);
    }
  }
}

CampaignPlan build_campaign(const Library& lib, const CampaignSpec& spec,
                            int jobs, engine::ResultCache* cache) {
  SCPG_REQUIRE(spec.points >= 2, "campaign needs at least 2 grid points");
  SCPG_REQUIRE(spec.cycles >= 1, "campaign needs at least 1 measured cycle");
  std::ifstream in(spec.netlist_path);
  if (!in) throw Error("cannot open input netlist: " + spec.netlist_path);
  Netlist loaded = read_verilog(in, lib, {}, spec.netlist_path);

  CampaignPlan plan;
  plan.spec = spec;
  plan.design_name = loaded.name();

  bool already_gated = false;
  for (std::uint32_t ci = 0; ci < loaded.num_cells(); ++ci)
    if (loaded.cell(CellId{ci}).domain == Domain::Gated) already_gated = true;
  plan.already_gated = already_gated;
  plan.original = std::make_unique<Netlist>(loaded);
  plan.gated = std::make_unique<Netlist>(std::move(loaded));
  if (!already_gated) {
    ScpgOptions sopt;
    sopt.clock_port = spec.clock_port;
    apply_scpg(*plan.gated, sopt);
  }

  const Corner c{Voltage{spec.vdd}, spec.temp_c};
  SimConfig cfg;
  cfg.corner = c;
  const Energy e_dyn = estimate_dynamic_energy(*plan.gated, c, spec.activity);
  plan.model = std::make_unique<ScpgPowerModel>(
      ScpgPowerModel::extract(*plan.gated, cfg, e_dyn));

  engine::SweepSpec sweep;
  sweep.design(*plan.original, "original").design(*plan.gated, "gated");
  sweep.base_sim(cfg)
      .cycles(spec.cycles)
      .clock_port(spec.clock_port)
      .jobs(jobs)
      .cache(cache)
      .backend(spec.backend)
      .stimulus(random_stimulus(spec.activity, spec.clock_port));
  append_campaign_grid(sweep, spec, *plan.model, already_gated, spec.seed,
                       std::string());
  plan.experiment = std::make_unique<engine::Experiment>(std::move(sweep));

  // The digest binds journals and workers to this campaign: canonical
  // spec text plus the structural content of both expanded designs.
  Fnv1a h;
  h.mix(std::string_view(to_json(spec)));
  h.mix(structural_digest(*plan.original));
  h.mix(structural_digest(*plan.gated));
  plan.digest = h.digest();
  return plan;
}

} // namespace scpg::campaign
