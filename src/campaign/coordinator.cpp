#include "campaign/coordinator.hpp"

#include <poll.h>
#include <signal.h>

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "campaign/frame.hpp"
#include "campaign/journal.hpp"
#include "campaign/worker.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/subprocess.hpp"

namespace scpg::campaign {

namespace {

using Clock = std::chrono::steady_clock;

struct Range {
  std::size_t first{0};
  std::size_t count{0};
  std::size_t received{0}; ///< rows streamed back in the current attempt
  int attempts{0}; ///< assignments consumed
  enum class State { Queued, Running, Done, Poisoned } state{State::Queued};
  Clock::time_point eligible_at{}; ///< Queued: earliest next assignment
  Clock::time_point started_at{}; ///< Running: deadline base
};

struct Worker {
  Subprocess proc;
  enum class State { Initializing, Idle, Busy } state{State::Initializing};
  int range{-1}; ///< index into ranges when Busy
  std::string buf; ///< unparsed stdout bytes
  int lineno{0}; ///< frames read, for ParseError locations
  Clock::time_point last_seen{}; ///< any frame (results count as liveness)
  bool alive{true};
};

class Coordinator {
 public:
  Coordinator(const CampaignPlan& plan, const CoordinatorOptions& opt)
      : plan_(plan), opt_(opt) {}

  CampaignOutcome run() {
    ignore_sigpipe();
    const std::size_t total = plan_.points().size();
    outcome_.campaign_digest = plan_.digest;
    outcome_.results.resize(total);
    for (std::size_t i = 0; i < total; ++i)
      outcome_.results[i].point = plan_.points()[i];
    done_.assign(total, false);

    setup_journal();
    build_ranges();

    if (opt_.workers <= 0)
      run_in_process();
    else
      supervise();

    journal_.close();
    finish_outcome();
    return outcome_;
  }

 private:
  // --- setup ----------------------------------------------------------

  void setup_journal() {
    if (opt_.journal_path.empty()) {
      SCPG_REQUIRE(!opt_.resume, "--resume requires a journal path");
      return;
    }
    if (!opt_.resume) {
      journal_.create(opt_.journal_path, plan_);
      return;
    }
    // Resume: strict about complete lines, tolerant about exactly one
    // torn tail, and bound to this campaign by digest.
    const JournalContents jc =
        read_journal(opt_.journal_path, /*allow_torn_tail=*/true);
    if (jc.campaign_digest != plan_.digest)
      throw Error("journal " + opt_.journal_path +
                  " belongs to a different campaign (journal " +
                  hex64(jc.campaign_digest) + ", current " +
                  hex64(plan_.digest) + ")");
    if (jc.total_rows != plan_.points().size())
      throw Error("journal row count disagrees with campaign");
    for (const JournalEntry& e : jc.entries) {
      if (e.point_digest != plan_.experiment->row_digest(e.row))
        throw ParseError("journal: row " + std::to_string(e.row) +
                             " digest does not match this campaign",
                         opt_.journal_path, 0);
      record_row(e, /*from_journal=*/true);
      ++outcome_.resumed_skipped;
      SCPG_OBS_COUNT("campaign.resume_skip", 1);
    }
    journal_.open_resume(opt_.journal_path, jc.clean_bytes);
  }

  void build_ranges() {
    const std::size_t total = plan_.points().size();
    const std::size_t shard = std::max<std::size_t>(1, opt_.shard_size);
    std::size_t i = 0;
    while (i < total) {
      if (done_[i]) {
        ++i;
        continue;
      }
      // Longest run of pending rows starting at i, capped at shard.
      std::size_t j = i;
      while (j < total && !done_[j] && j - i < shard) ++j;
      ranges_.push_back(Range{i, j - i});
      i = j;
    }
  }

  // --- shared row bookkeeping ----------------------------------------

  void record_row(const JournalEntry& e, bool from_journal) {
    SCPG_REQUIRE(e.row < done_.size() && !done_[e.row],
                 "coordinator accepted a duplicate row");
    engine::PointResult& r = outcome_.results[e.row];
    static_cast<engine::Measurement&>(r) = e.m;
    r.cache_hit = e.cache_hit;
    done_[e.row] = true;
    if (!from_journal && journal_.is_open()) journal_.append(e);
  }

  // --- in-process reference path -------------------------------------

  void run_in_process() {
    for (Range& rg : ranges_) {
      for (std::size_t row = rg.first; row < rg.first + rg.count; ++row) {
        const engine::PointResult r = plan_.experiment->run_row(row);
        JournalEntry e;
        e.row = row;
        e.point_digest = plan_.experiment->row_digest(row);
        e.m = r;
        e.cache_hit = r.cache_hit;
        record_row(e, /*from_journal=*/false);
        event("point", 0);
      }
      rg.state = Range::State::Done;
    }
  }

  // --- multi-process supervision -------------------------------------

  void supervise() {
    while (!all_settled()) {
      reap_dead_workers();
      spawn_workers();
      check_liveness();
      assign_ranges();
      if (all_settled()) break;
      poll_workers();
    }
    shutdown_workers();
  }

  bool all_settled() const {
    return std::all_of(ranges_.begin(), ranges_.end(), [](const Range& r) {
      return r.state == Range::State::Done ||
             r.state == Range::State::Poisoned;
    });
  }

  std::size_t open_ranges() const {
    return std::size_t(std::count_if(
        ranges_.begin(), ranges_.end(), [](const Range& r) {
          return r.state == Range::State::Queued ||
                 r.state == Range::State::Running;
        }));
  }

  void event(const std::string& what, int pid) const {
    if (opt_.on_event) opt_.on_event(what, pid);
  }

  void spawn_workers() {
    const std::size_t want =
        std::min<std::size_t>(std::size_t(opt_.workers), open_ranges());
    while (alive_workers() < want) {
      SpawnOptions so;
      so.argv = opt_.worker_argv;
      if (so.argv.empty())
        so.child_main = [](int in, int out) { return worker_main(in, out); };
      Worker w;
      w.proc = spawn_child(so);
      set_nonblocking(w.proc.stdout_fd);
      w.last_seen = Clock::now();
      const bool crash =
          opt_.worker_crash_at_row &&
          int(crash_workers_spawned_) < opt_.crash_worker_limit;
      if (crash) ++crash_workers_spawned_;
      std::string init = "{\"kind\": \"init\", \"campaign\": \"" +
                         hex64(plan_.digest) + "\", \"heartbeat_ms\": " +
                         std::to_string(opt_.heartbeat_ms);
      if (crash)
        init += ", \"crash_at_row\": " +
                std::to_string(*opt_.worker_crash_at_row);
      init += ", \"spec\": " + to_json(plan_.spec) + "}";
      if (!write_all(w.proc.stdin_fd, encode_frame(init))) w.alive = false;
      ++outcome_.workers_spawned;
      SCPG_OBS_COUNT("campaign.worker_spawn", 1);
      event("spawn", int(w.proc.pid));
      workers_.push_back(std::move(w));
    }
  }

  std::size_t alive_workers() const {
    return std::size_t(std::count_if(
        workers_.begin(), workers_.end(),
        [](const Worker& w) { return w.alive; }));
  }

  void assign_ranges() {
    const Clock::time_point now = Clock::now();
    for (Worker& w : workers_) {
      if (!w.alive || w.state != Worker::State::Idle) continue;
      int best = -1;
      for (std::size_t ri = 0; ri < ranges_.size(); ++ri) {
        const Range& rg = ranges_[ri];
        if (rg.state == Range::State::Queued && rg.eligible_at <= now &&
            (best < 0 || rg.first < ranges_[std::size_t(best)].first))
          best = int(ri);
      }
      if (best < 0) return;
      Range& rg = ranges_[std::size_t(best)];
      const std::string msg =
          "{\"kind\": \"assign\", \"first\": " + std::to_string(rg.first) +
          ", \"count\": " + std::to_string(rg.count) + "}";
      if (!write_all(w.proc.stdin_fd, encode_frame(msg))) {
        fail_worker(w, "write");
        continue;
      }
      rg.state = Range::State::Running;
      rg.started_at = now;
      rg.received = 0;
      ++rg.attempts;
      w.state = Worker::State::Busy;
      w.range = best;
    }
  }

  /// Kills (if still running), reaps and retires a failed worker, then
  /// requeues or poisons the remainder of its range.
  void fail_worker(Worker& w, const std::string& why) {
    if (!w.alive) return;
    if (!wait_child(w.proc.pid, /*block=*/false).has_value()) {
      kill_child(w.proc.pid, SIGKILL);
      wait_child(w.proc.pid, /*block=*/true);
    }
    close_fd(w.proc.stdin_fd);
    close_fd(w.proc.stdout_fd);
    w.alive = false;
    if (w.state == Worker::State::Initializing) ++init_failures_;
    settle_failed_range(w);
    if (init_failures_ >= 3 && alive_workers() == 0)
      throw Error("campaign workers die before initializing; giving up");
    (void)why;
  }

  /// Rows streamed back before the failure are durable; only the
  /// remainder of the range retries (with backoff) or poisons.
  void settle_failed_range(Worker& w) {
    if (w.range < 0) return;
    Range& rg = ranges_[std::size_t(w.range)];
    w.range = -1;
    rg.first += rg.received;
    rg.count -= rg.received;
    rg.received = 0;
    if (rg.count == 0) {
      rg.state = Range::State::Done;
    } else if (rg.attempts >= opt_.max_attempts) {
      rg.state = Range::State::Poisoned;
      SCPG_OBS_COUNT("campaign.range_poisoned", 1);
      event("poisoned", int(w.proc.pid));
    } else {
      rg.state = Range::State::Queued;
      rg.eligible_at =
          Clock::now() + std::chrono::milliseconds(
                             opt_.backoff_base_ms << (rg.attempts - 1));
      ++outcome_.retries;
      SCPG_OBS_COUNT("campaign.range_requeue", 1);
      event("requeue", int(w.proc.pid));
    }
  }

  void reap_dead_workers() {
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      if (wait_child(w.proc.pid, /*block=*/false).has_value()) {
        // Drain what it managed to write before dying (drain_worker hits
        // EOF and funnels into fail_worker, whose non-blocking wait on
        // the already-reaped pid is a no-op).
        drain_worker(w);
      }
    }
  }

  void check_liveness() {
    const Clock::time_point now = Clock::now();
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      const auto silent = std::chrono::duration_cast<std::chrono::milliseconds>(
                              now - w.last_seen)
                              .count();
      if (silent > 3LL * opt_.heartbeat_ms) {
        ++outcome_.heartbeat_misses;
        SCPG_OBS_COUNT("campaign.heartbeat_miss", 1);
        event("heartbeat_miss", int(w.proc.pid));
        fail_worker(w, "heartbeat");
        continue;
      }
      if (w.state == Worker::State::Busy) {
        const Range& rg = ranges_[std::size_t(w.range)];
        const auto running =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - rg.started_at)
                .count();
        if (running > opt_.range_timeout_ms) {
          ++outcome_.deadline_kills;
          SCPG_OBS_COUNT("campaign.deadline_kill", 1);
          event("deadline", int(w.proc.pid));
          fail_worker(w, "deadline");
        }
      }
    }
  }

  void poll_workers() {
    std::vector<pollfd> fds;
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive) continue;
      fds.push_back(pollfd{workers_[i].proc.stdout_fd, POLLIN, 0});
      idx.push_back(i);
    }
    if (fds.empty()) return;
    const int timeout_ms = std::max(10, opt_.heartbeat_ms / 4);
    const int n = ::poll(fds.data(), nfds_t(fds.size()), timeout_ms);
    if (n <= 0) return;
    for (std::size_t k = 0; k < fds.size(); ++k)
      if (fds[k].revents != 0) drain_worker(workers_[idx[k]]);
  }

  void drain_worker(Worker& w) {
    if (!w.alive) return;
    for (;;) {
      const int n = read_available(w.proc.stdout_fd, w.buf);
      if (n < 0) break; // would block; partial line stays buffered
      if (n == 0) {
        // EOF before shutdown: the worker is gone.  The reaper (or
        // fail_worker's kill) settles the pid; requeue now.
        fail_worker(w, "eof");
        return;
      }
      std::size_t nl;
      while (w.alive && (nl = w.buf.find('\n')) != std::string::npos) {
        const std::string line = w.buf.substr(0, nl);
        w.buf.erase(0, nl + 1);
        handle_frame(w, line);
      }
      if (!w.alive) return;
    }
  }

  void handle_frame(Worker& w, const std::string& line) {
    ++w.lineno;
    json::Value payload;
    try {
      payload = decode_frame(
          line, "worker-pid-" + std::to_string(w.proc.pid), w.lineno);
      dispatch_frame(w, payload);
    } catch (const ParseError&) {
      // A corrupt or protocol-violating frame poisons the whole stream:
      // kill the worker and requeue the remainder of its range.
      SCPG_OBS_COUNT("campaign.corrupt_frame", 1);
      fail_worker(w, "corrupt-frame");
    }
  }

  void dispatch_frame(Worker& w, const json::Value& payload) {
    const std::string src = "worker-pid-" + std::to_string(w.proc.pid);
    const json::Value* kind = payload.get("kind");
    if (kind == nullptr || !kind->is(json::Value::Type::String))
      throw ParseError("frame has no kind", src, w.lineno);
    w.last_seen = Clock::now();
    if (kind->str == "heartbeat") return;
    if (kind->str == "hello") {
      if (w.state != Worker::State::Initializing)
        throw ParseError("unexpected hello", src, w.lineno);
      const json::Value* d = payload.get("campaign");
      if (d == nullptr || !d->is(json::Value::Type::String) ||
          parse_hex64(d->str, src, w.lineno) != plan_.digest)
        throw ParseError("worker campaign digest mismatch", src, w.lineno);
      w.state = Worker::State::Idle;
      init_failures_ = 0;
      event("hello", int(w.proc.pid));
      return;
    }
    if (kind->str == "point") {
      if (w.state != Worker::State::Busy)
        throw ParseError("point frame from idle worker", src, w.lineno);
      Range& rg = ranges_[std::size_t(w.range)];
      JournalEntry e = entry_from_payload(payload, src, w.lineno);
      if (e.row != rg.first + rg.received)
        throw ParseError("out-of-order row " + std::to_string(e.row), src,
                         w.lineno);
      if (e.point_digest != plan_.experiment->row_digest(e.row))
        throw ParseError("row digest mismatch", src, w.lineno);
      record_row(e, /*from_journal=*/false);
      ++rg.received;
      event("point", int(w.proc.pid));
      return;
    }
    if (kind->str == "done") {
      if (w.state != Worker::State::Busy)
        throw ParseError("done frame from idle worker", src, w.lineno);
      Range& rg = ranges_[std::size_t(w.range)];
      if (rg.received != rg.count)
        throw ParseError("done before all rows arrived", src, w.lineno);
      rg.state = Range::State::Done;
      w.state = Worker::State::Idle;
      w.range = -1;
      event("range_done", int(w.proc.pid));
      return;
    }
    throw ParseError("unknown frame kind \"" + kind->str + "\"", src,
                     w.lineno);
  }

  void shutdown_workers() {
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      write_all(w.proc.stdin_fd, encode_frame("{\"kind\": \"shutdown\"}"));
      close_fd(w.proc.stdin_fd);
    }
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(2000);
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      for (;;) {
        if (wait_child(w.proc.pid, /*block=*/false).has_value()) break;
        if (Clock::now() >= deadline) {
          kill_child(w.proc.pid, SIGKILL);
          wait_child(w.proc.pid, /*block=*/true);
          break;
        }
        ::poll(nullptr, 0, 20);
      }
      close_fd(w.proc.stdout_fd);
      w.alive = false;
    }
  }

  // --- wrap-up --------------------------------------------------------

  void finish_outcome() {
    for (const Range& rg : ranges_)
      if (rg.state == Range::State::Poisoned)
        for (std::size_t row = rg.first; row < rg.first + rg.count; ++row)
          outcome_.poisoned_rows.push_back(row);
    std::sort(outcome_.poisoned_rows.begin(), outcome_.poisoned_rows.end());
    if (outcome_.poisoned_rows.empty())
      outcome_.result_digest = result_digest(outcome_.results);
    SCPG_OBS_GAUGE("campaign.rows_total", outcome_.results.size());
    SCPG_OBS_GAUGE("campaign.rows_poisoned", outcome_.poisoned_rows.size());
  }

  const CampaignPlan& plan_;
  const CoordinatorOptions& opt_;
  CampaignOutcome outcome_;
  JournalWriter journal_;
  std::vector<bool> done_;
  std::vector<Range> ranges_;
  std::deque<Worker> workers_;
  int init_failures_{0};
  std::size_t crash_workers_spawned_{0};
};

} // namespace

CampaignOutcome run_campaign(const CampaignPlan& plan,
                             const CoordinatorOptions& opt) {
  Coordinator c(plan, opt);
  return c.run();
}

} // namespace scpg::campaign
