// Write-ahead journal: the crash-safety substrate of a campaign.
//
// A journal is a plain text file of frames (frame.hpp), one per line:
// a single header frame binding the file to a campaign (canonical spec
// JSON, campaign digest, total row count), followed by one point frame
// per completed row (row index, point digest, bit-exact Measurement).
// Every append is written with a single write(2) and fsync'd before the
// coordinator considers the row durable, so after SIGKILL at any moment
// the file is a clean prefix of frames plus at most one torn final line.
//
// Reading has two strictness levels.  Resume (`allow_torn_tail`) drops
// ONLY a final line that lacks its '\n' — the unique artifact of a
// killed append — and reports the byte length of the clean prefix so
// the writer can truncate before continuing.  Any *complete* line that
// fails to decode (bit flip, truncated tail that still got a newline,
// hostile edit, wrong campaign digest, duplicate or out-of-range row)
// is a located ParseError: a corrupt journal fails loudly, it never
// becomes a silent partial resume.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "engine/sweep.hpp"

namespace scpg::campaign {

inline constexpr int kJournalVersion = 1; ///< digest-scheme version

/// One durable row: which point, what it measured.
struct JournalEntry {
  std::size_t row{0};
  std::uint64_t point_digest{0};
  engine::Measurement m;
  bool cache_hit{false};
};

struct JournalContents {
  CampaignSpec spec;
  std::uint64_t campaign_digest{0};
  std::size_t total_rows{0};
  std::vector<JournalEntry> entries; ///< journal order (append order)
  std::uint64_t clean_bytes{0}; ///< length of the decodable prefix
  bool dropped_torn_tail{false};
};

/// Parses a journal.  With `allow_torn_tail`, a final line missing its
/// '\n' is dropped (crash artifact) and `clean_bytes` excludes it; in
/// strict mode it is an error like any other malformation.  Throws
/// ParseError (located at path:line) on any undecodable complete line,
/// missing/duplicated header, unknown journal version, duplicate row,
/// or row index out of range.
[[nodiscard]] JournalContents read_journal(const std::string& path,
                                           bool allow_torn_tail);

/// Appends frames with write(2)+fsync(2); one frame per call, so a
/// crash can tear at most the final line.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates/truncates `path` and writes the header frame.
  void create(const std::string& path, const CampaignPlan& plan);

  /// Opens an existing journal for resume: truncates to `clean_bytes`
  /// (discarding a torn tail) and appends from there.
  void open_resume(const std::string& path, std::uint64_t clean_bytes);

  /// Appends one durable point frame.
  void append(const JournalEntry& e);

  void close();
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

 private:
  void write_frame(const std::string& frame);

  int fd_{-1};
  std::string path_;
};

/// Payload renderers shared with tests and tools/journal_check.
[[nodiscard]] std::string header_payload(const CampaignPlan& plan);
[[nodiscard]] std::string entry_payload(const JournalEntry& e);

/// Inverse of entry_payload; throws located ParseError.
[[nodiscard]] JournalEntry entry_from_payload(const json::Value& payload,
                                              const std::string& source,
                                              int lineno);

/// Order-independent digest over a full result set: XOR of per-row
/// Fnv1a(row, point_digest, measurement bit patterns).  Two campaigns
/// agree iff every row measured bit-identically.
[[nodiscard]] std::uint64_t result_digest(
    const std::vector<engine::PointResult>& rows);

} // namespace scpg::campaign
