// Campaign coordinator: shards an Experiment's rows across supervised
// worker subprocesses, crash-safe.
//
// The coordinator is a single-threaded poll(2) loop — no signals, no
// threads, no fork-after-pthread hazards.  It owns four pieces of
// state:
//
//   * ranges    — contiguous row chunks in one of four states:
//                 Queued -> Running -> Done, with the failure edge
//                 Running -> Queued (retry, exponential backoff) until
//                 the attempt budget is spent, then -> Poisoned.
//   * workers   — subprocesses speaking the worker.hpp frame protocol;
//                 each is Initializing (spawned, no hello yet), Idle,
//                 or Busy (owns a Running range).
//   * journal   — optional write-ahead journal (journal.hpp): every
//                 row result is fsync'd before it is counted done, so
//                 SIGKILL of the coordinator loses at most one torn
//                 line that resume discards.
//   * results   — rows in index order, bit-identical to the in-process
//                 engine (worker RNG streams are content-keyed).
//
// Failure taxonomy, all funneled into the same requeue path:
//   worker exit/killed       -> remaining rows of its range requeue
//   heartbeat silence (3x)   -> worker killed, range requeues
//   per-range deadline       -> worker killed, range requeues
//   corrupt/unexpected frame -> worker killed, range requeues
// Rows already streamed back before the failure stay done (and
// journaled); only the remainder of the range retries.  A range that
// exhausts max_attempts is Poisoned: the campaign completes every
// healthy range, reports the poisoned rows, and the CLI exits with the
// distinct poisoned exit code instead of tearing the whole run down.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "engine/sweep.hpp"

namespace scpg::campaign {

struct CoordinatorOptions {
  int workers{2}; ///< 0 = run in-process (reference path, still journals)
  int max_attempts{3}; ///< assignment attempts per range before poisoning
  int heartbeat_ms{250}; ///< worker heartbeat period; miss = 3x silence
  int range_timeout_ms{60000}; ///< per-assignment deadline
  int backoff_base_ms{50}; ///< retry backoff: base * 2^(attempt-1)
  std::size_t shard_size{4}; ///< rows per assignment
  std::string journal_path; ///< empty = no journal
  bool resume{false}; ///< journal_path must exist; skip finished rows

  /// Exec-mode worker command (e.g. {"/path/to/scpgc", "worker"}).
  /// Empty => fork mode: children run worker_main in-process (tests).
  std::vector<std::string> worker_argv;

  /// Fault injection: the first `crash_worker_limit` spawned workers
  /// are told to _exit(137) just before this global row index.
  std::optional<std::size_t> worker_crash_at_row;
  int crash_worker_limit{0};

  /// Test/observability hook: ("spawn"|"hello"|"point"|"range_done"|
  /// "requeue"|"poisoned"|"heartbeat_miss"|"deadline", pid).
  std::function<void(const std::string&, int)> on_event;
};

struct CampaignOutcome {
  /// All rows in index order.  Poisoned rows are present but default-
  /// initialized except for `.point`; check `poisoned_rows`.
  std::vector<engine::PointResult> results;
  std::vector<std::size_t> poisoned_rows;
  std::size_t resumed_skipped{0}; ///< rows satisfied from the journal
  std::size_t retries{0}; ///< range re-assignments after a failure
  std::size_t workers_spawned{0};
  std::size_t heartbeat_misses{0};
  std::size_t deadline_kills{0};
  std::uint64_t campaign_digest{0};
  std::uint64_t result_digest{0}; ///< 0 unless complete()

  [[nodiscard]] bool complete() const { return poisoned_rows.empty(); }
};

/// Runs the campaign described by `plan` to completion or graceful
/// degradation.  Throws Error on unrecoverable setup failures (journal
/// unwritable, resume digest mismatch, workers that can never
/// initialize); per-range failures degrade to poisoned rows instead.
[[nodiscard]] CampaignOutcome run_campaign(const CampaignPlan& plan,
                                           const CoordinatorOptions& opt);

} // namespace scpg::campaign
