#include "campaign/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "campaign/frame.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace scpg::campaign {

namespace {

[[noreturn]] void journal_error(const std::string& what,
                                const std::string& source, int lineno) {
  throw ParseError("journal: " + what, source, lineno);
}

std::uint64_t hex_field(const json::Value& v, const char* key,
                        const std::string& source, int lineno) {
  const json::Value* f = v.get(key);
  if (f == nullptr || !f->is(json::Value::Type::String))
    journal_error(std::string("missing or non-string \"") + key + "\"", source,
                  lineno);
  return parse_hex64(f->str, source, lineno);
}

double hex_double_field(const json::Value& v, const char* key,
                        const std::string& source, int lineno) {
  return bits_double(hex_field(v, key, source, lineno));
}

std::string kind_of(const json::Value& payload, const std::string& source,
                    int lineno) {
  const json::Value* kind = payload.get("kind");
  if (kind == nullptr || !kind->is(json::Value::Type::String))
    journal_error("frame payload has no \"kind\"", source, lineno);
  return kind->str;
}

} // namespace

std::string header_payload(const CampaignPlan& plan) {
  std::string s = "{\"kind\": \"header\", \"journal_version\": ";
  s += std::to_string(kJournalVersion);
  s += ", \"campaign\": \"" + hex64(plan.digest) + "\"";
  s += ", \"total\": " + std::to_string(plan.points().size());
  s += ", \"spec\": " + to_json(plan.spec);
  s += "}";
  return s;
}

std::string entry_payload(const JournalEntry& e) {
  const PowerTally& t = e.m.tally;
  std::string s = "{\"kind\": \"point\", \"row\": " + std::to_string(e.row);
  s += ", \"digest\": \"" + hex64(e.point_digest) + "\"";
  s += ", \"cycles\": " + std::to_string(e.m.cycles);
  s += ", \"cache_hit\": ";
  s += e.cache_hit ? "true" : "false";
  // Bit patterns, not decimal: the resume contract is byte-identity.
  s += ", \"avg_power\": \"" + hex64(double_bits(e.m.avg_power.v)) + "\"";
  s += ", \"epc\": \"" + hex64(double_bits(e.m.energy_per_cycle.v)) + "\"";
  s += ", \"switching\": \"" + hex64(double_bits(t.switching.v)) + "\"";
  s += ", \"internal\": \"" + hex64(double_bits(t.internal.v)) + "\"";
  s += ", \"leakage_aon\": \"" + hex64(double_bits(t.leakage_aon.v)) + "\"";
  s += ", \"leakage_gated\": \"" + hex64(double_bits(t.leakage_gated.v)) +
       "\"";
  s += ", \"header_off\": \"" + hex64(double_bits(t.header_off.v)) + "\"";
  s += ", \"rail_recharge\": \"" + hex64(double_bits(t.rail_recharge.v)) +
       "\"";
  s += ", \"crowbar\": \"" + hex64(double_bits(t.crowbar.v)) + "\"";
  s += ", \"header_gate\": \"" + hex64(double_bits(t.header_gate.v)) + "\"";
  s += ", \"macro_access\": \"" + hex64(double_bits(t.macro_access.v)) + "\"";
  s += ", \"window\": \"" + hex64(double_bits(t.window.v)) + "\"";
  s += "}";
  return s;
}

JournalEntry entry_from_payload(const json::Value& payload,
                                const std::string& source, int lineno) {
  JournalEntry e;
  const json::Value* row = payload.get("row");
  if (row == nullptr || !row->is(json::Value::Type::Number) || row->num < 0)
    journal_error("point frame has no valid \"row\"", source, lineno);
  e.row = std::size_t(row->num);
  e.point_digest = hex_field(payload, "digest", source, lineno);
  const json::Value* cycles = payload.get("cycles");
  if (cycles == nullptr || !cycles->is(json::Value::Type::Number))
    journal_error("point frame has no valid \"cycles\"", source, lineno);
  e.m.cycles = int(cycles->num);
  const json::Value* hit = payload.get("cache_hit");
  if (hit == nullptr || !hit->is(json::Value::Type::Bool))
    journal_error("point frame has no valid \"cache_hit\"", source, lineno);
  e.cache_hit = hit->b;
  e.m.avg_power.v = hex_double_field(payload, "avg_power", source, lineno);
  e.m.energy_per_cycle.v = hex_double_field(payload, "epc", source, lineno);
  PowerTally& t = e.m.tally;
  t.switching.v = hex_double_field(payload, "switching", source, lineno);
  t.internal.v = hex_double_field(payload, "internal", source, lineno);
  t.leakage_aon.v = hex_double_field(payload, "leakage_aon", source, lineno);
  t.leakage_gated.v =
      hex_double_field(payload, "leakage_gated", source, lineno);
  t.header_off.v = hex_double_field(payload, "header_off", source, lineno);
  t.rail_recharge.v =
      hex_double_field(payload, "rail_recharge", source, lineno);
  t.crowbar.v = hex_double_field(payload, "crowbar", source, lineno);
  t.header_gate.v = hex_double_field(payload, "header_gate", source, lineno);
  t.macro_access.v = hex_double_field(payload, "macro_access", source, lineno);
  t.window.v = hex_double_field(payload, "window", source, lineno);
  return e;
}

JournalContents read_journal(const std::string& path, bool allow_torn_tail) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open journal: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JournalContents out;
  std::unordered_set<std::size_t> seen_rows;
  bool have_header = false;
  int lineno = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    ++lineno;
    if (nl == std::string::npos) {
      // Final line without '\n': the one shape a killed append leaves.
      if (!allow_torn_tail)
        journal_error("truncated frame (missing newline)", path, lineno);
      out.dropped_torn_tail = true;
      break;
    }
    const std::string_view line(text.data() + pos, nl - pos);
    const json::Value payload = decode_frame(line, path, lineno);
    const std::string kind = kind_of(payload, path, lineno);
    if (kind == "header") {
      if (have_header) journal_error("duplicate header frame", path, lineno);
      have_header = true;
      const json::Value* ver = payload.get("journal_version");
      if (ver == nullptr || !ver->is(json::Value::Type::Number) ||
          int(ver->num) != kJournalVersion)
        journal_error("unsupported journal_version (digest scheme mismatch)",
                      path, lineno);
      out.campaign_digest = hex_field(payload, "campaign", path, lineno);
      const json::Value* total = payload.get("total");
      if (total == nullptr || !total->is(json::Value::Type::Number) ||
          total->num < 0)
        journal_error("header has no valid \"total\"", path, lineno);
      out.total_rows = std::size_t(total->num);
      const json::Value* spec = payload.get("spec");
      if (spec == nullptr)
        journal_error("header has no \"spec\"", path, lineno);
      out.spec = spec_from_json(*spec, path, lineno);
    } else if (kind == "point") {
      if (!have_header)
        journal_error("point frame before header", path, lineno);
      JournalEntry e = entry_from_payload(payload, path, lineno);
      if (e.row >= out.total_rows)
        journal_error("row " + std::to_string(e.row) +
                          " out of range (total " +
                          std::to_string(out.total_rows) + ")",
                      path, lineno);
      if (!seen_rows.insert(e.row).second)
        journal_error("duplicate row " + std::to_string(e.row), path, lineno);
      out.entries.push_back(std::move(e));
    } else {
      journal_error("unknown frame kind \"" + kind + "\"", path, lineno);
    }
    pos = nl + 1;
    out.clean_bytes = pos;
  }
  if (!have_header)
    journal_error("no header frame", path, out.entries.empty() ? 1 : lineno);
  return out;
}

JournalWriter::~JournalWriter() { close(); }

void JournalWriter::write_frame(const std::string& frame) {
  SCPG_REQUIRE(fd_ >= 0, "journal writer is not open");
  const char* p = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("journal write failed: " + path_ + ": " +
                  std::strerror(errno));
    }
    p += n;
    left -= std::size_t(n);
  }
  if (::fsync(fd_) != 0)
    throw Error("journal fsync failed: " + path_ + ": " +
                std::strerror(errno));
}

void JournalWriter::create(const std::string& path, const CampaignPlan& plan) {
  close();
  path_ = path;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw Error("cannot create journal: " + path + ": " +
                std::strerror(errno));
  write_frame(encode_frame(header_payload(plan)));
}

void JournalWriter::open_resume(const std::string& path,
                                std::uint64_t clean_bytes) {
  close();
  path_ = path;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd_ < 0)
    throw Error("cannot open journal for resume: " + path + ": " +
                std::strerror(errno));
  // Drop the torn tail before appending, or the first new frame would
  // concatenate onto half a line and corrupt the journal for good.
  if (::ftruncate(fd_, off_t(clean_bytes)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0)
    throw Error("cannot truncate journal to clean prefix: " + path + ": " +
                std::strerror(errno));
}

void JournalWriter::append(const JournalEntry& e) {
  write_frame(encode_frame(entry_payload(e)));
}

void JournalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t result_digest(const std::vector<engine::PointResult>& rows) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const engine::PointResult& r = rows[i];
    Fnv1a h;
    h.mix(std::uint64_t(i));
    h.mix(double_bits(r.avg_power.v));
    h.mix(double_bits(r.energy_per_cycle.v));
    h.mix(double_bits(r.tally.total().v));
    h.mix(double_bits(r.tally.window.v));
    h.mix(std::uint64_t(r.cycles));
    acc ^= h.digest();
  }
  return acc;
}

} // namespace scpg::campaign
