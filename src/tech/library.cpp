#include "tech/library.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace scpg {

using namespace scpg::literals;

Power leakage_in_state(const CellSpec& spec, std::span<const Logic> inputs) {
  if (inputs.empty()) return spec.leakage;
  int known = 0, high = 0;
  for (Logic v : inputs) {
    if (is_known(v)) {
      ++known;
      if (v == Logic::L1) ++high;
    }
  }
  if (known == 0) return spec.leakage;
  // More inputs high -> more of the NMOS stack conducting-adjacent paths
  // leak; a linear spread around the state average is a first-order stand-in
  // for the per-state Liberty leakage table.
  const double frac_high = double(high) / double(known);
  return spec.leakage * (1.0 + spec.leak_state_spread * (frac_high - 0.5));
}

std::string_view input_pin_name(CellKind k, int i) {
  static constexpr std::string_view abc[] = {"A", "B", "C"};
  switch (k) {
    case CellKind::Mux2: {
      static constexpr std::string_view pins[] = {"A", "B", "S"};
      SCPG_REQUIRE(i >= 0 && i < 3, "Mux2 pin index out of range");
      return pins[i];
    }
    case CellKind::Dff: {
      static constexpr std::string_view pins[] = {"D", "CK"};
      SCPG_REQUIRE(i >= 0 && i < 2, "Dff pin index out of range");
      return pins[i];
    }
    case CellKind::DffR: {
      static constexpr std::string_view pins[] = {"D", "CK", "RN"};
      SCPG_REQUIRE(i >= 0 && i < 3, "DffR pin index out of range");
      return pins[i];
    }
    case CellKind::IsoLo:
    case CellKind::IsoHi: {
      static constexpr std::string_view pins[] = {"A", "NISO"};
      SCPG_REQUIRE(i >= 0 && i < 2, "isolation pin index out of range");
      return pins[i];
    }
    case CellKind::Header: {
      SCPG_REQUIRE(i == 0, "Header pin index out of range");
      return "NSLEEP";
    }
    default:
      SCPG_REQUIRE(i >= 0 && i < kind_num_inputs(k),
                   "pin index out of range");
      return abc[i];
  }
}

std::string_view output_pin_name(CellKind k) {
  switch (k) {
    case CellKind::Dff:
    case CellKind::DffR:
      return "Q";
    case CellKind::Header:
      return "VVDD";
    default:
      return "Y";
  }
}

Library::Library(std::string name, TechModel tech)
    : name_(std::move(name)), tech_(tech) {}

SpecId Library::add(CellSpec spec) {
  SCPG_REQUIRE(!spec.name.empty(), "cell spec needs a name");
  SCPG_REQUIRE(!by_name_.contains(spec.name),
               "duplicate cell name: " + spec.name);
  const SpecId id = SpecId(specs_.size());
  by_name_.emplace(spec.name, id);
  specs_.push_back(std::move(spec));
  return id;
}

const CellSpec& Library::spec(SpecId id) const {
  SCPG_REQUIRE(id < specs_.size(), "cell spec id out of range");
  return specs_[id];
}

std::optional<SpecId> Library::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

SpecId Library::id_of(std::string_view name) const {
  const auto id = find(name);
  SCPG_REQUIRE(id.has_value(), "unknown cell: " + std::string(name));
  return *id;
}

SpecId Library::pick(CellKind kind, int drive) const {
  for (SpecId i = 0; i < specs_.size(); ++i)
    if (specs_[i].kind == kind && specs_[i].drive == drive) return i;
  throw PreconditionError("library has no " +
                          std::string(kind_name(kind)) + " at drive X" +
                          std::to_string(drive));
}

std::vector<int> Library::drives_of(CellKind kind) const {
  std::vector<int> out;
  for (const auto& s : specs_)
    if (s.kind == kind) out.push_back(s.drive);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Scales a base X1 spec to a higher drive strength: resistance falls as
/// 1/drive, capacitance/area/leakage/energy grow sub-linearly.
CellSpec scale_drive(CellSpec s, int drive) {
  SCPG_REQUIRE(drive >= 1, "drive must be >= 1");
  const double d = double(drive);
  const double grow = 1.0 + 0.6 * (d - 1.0);
  s.drive = drive;
  s.name = s.name.substr(0, s.name.rfind("_X")) + "_X" + std::to_string(drive);
  s.drive_res = s.drive_res / d;
  s.input_cap = s.input_cap * grow;
  s.output_cap = s.output_cap * grow;
  s.area = s.area * grow;
  s.leakage = s.leakage * grow;
  s.internal_energy = s.internal_energy * grow;
  return s;
}

} // namespace

Library Library::scpg90(std::optional<TechParams> tech_override) {
  // Technology parameters calibrated against the paper's 0.6 V operating
  // point and the Section IV sub-threshold sweeps (DESIGN.md §5):
  //  * delay(0.31 V)/delay(0.6 V) ~ 3.6 so the multiplier MEP lands near
  //    310 mV / ~10 MHz;
  //  * leak_scale(0.6 V) ~ 0.2 so 0.6 V leakage matches Table I/II levels.
  TechParams tp;
  tp.vdd_nom = 1.0_V;
  tp.vt = Voltage{0.20};
  tp.alpha = 1.5;
  tp.n_vt = Voltage{0.040};
  tp.dibl_per_v = 2.8;
  tp.leak_t2x_c = 11.0;
  tp.temp_nom_c = 25.0;
  tp.delay_tempco_per_c = 0.0012;
  tp.min_vdd = Voltage{0.12};
  tp.leak_char_vt = tp.vt; // leakage characterised at the nominal Vt
  if (tech_override) tp = *tech_override;

  Library lib("scpg90", TechModel{tp});

  auto gate = [](std::string name, CellKind kind, Area area,
                 Capacitance cin, Resistance r, Time tin, Power leak,
                 Energy eint) {
    CellSpec s;
    s.name = std::move(name);
    s.kind = kind;
    s.drive = 1;
    s.area = area;
    s.input_cap = cin;
    s.output_cap = Capacitance{cin.v * 0.45};
    s.drive_res = r;
    s.intrinsic_delay = tin;
    s.leakage = leak;
    s.internal_energy = eint;
    return s;
  };

  // Combinational cells (X1), with X2/X4 drive variants for the common ones.
  const CellSpec inv = gate("INV_X1", CellKind::Inv, 2.1_um2, 1.0_fF,
                            20.0_kOhm, 105.0_ps, 40_nW, 1.0_fJ);
  const CellSpec buf = gate("BUF_X1", CellKind::Buf, 3.2_um2, 1.0_fF,
                            16.0_kOhm, 170.0_ps, 55_nW, 1.4_fJ);
  const CellSpec nand2 = gate("NAND2_X1", CellKind::Nand2, 2.8_um2, 1.1_fF,
                              22.0_kOhm, 126.0_ps, 58_nW, 1.2_fJ);
  const CellSpec nand3 = gate("NAND3_X1", CellKind::Nand3, 3.9_um2, 1.2_fF,
                              26.0_kOhm, 161.0_ps, 76_nW, 1.6_fJ);
  const CellSpec nor2 = gate("NOR2_X1", CellKind::Nor2, 2.8_um2, 1.1_fF,
                             24.0_kOhm, 140.0_ps, 62_nW, 1.2_fJ);
  const CellSpec nor3 = gate("NOR3_X1", CellKind::Nor3, 3.9_um2, 1.2_fF,
                             29.0_kOhm, 182.0_ps, 80_nW, 1.6_fJ);
  const CellSpec and2 = gate("AND2_X1", CellKind::And2, 3.5_um2, 1.1_fF,
                             21.0_kOhm, 168.0_ps, 72_nW, 1.6_fJ);
  const CellSpec or2 = gate("OR2_X1", CellKind::Or2, 3.5_um2, 1.1_fF,
                            22.0_kOhm, 175.0_ps, 72_nW, 1.6_fJ);
  const CellSpec xor2 = gate("XOR2_X1", CellKind::Xor2, 5.6_um2, 1.5_fF,
                             24.0_kOhm, 182.0_ps, 115_nW, 2.1_fJ);
  const CellSpec xnor2 = gate("XNOR2_X1", CellKind::Xnor2, 5.6_um2, 1.5_fF,
                              24.0_kOhm, 189.0_ps, 115_nW, 2.1_fJ);
  const CellSpec aoi21 = gate("AOI21_X1", CellKind::Aoi21, 3.9_um2, 1.2_fF,
                              25.0_kOhm, 168.0_ps, 76_nW, 1.6_fJ);
  const CellSpec oai21 = gate("OAI21_X1", CellKind::Oai21, 3.9_um2, 1.2_fF,
                              25.0_kOhm, 168.0_ps, 76_nW, 1.6_fJ);
  const CellSpec mux2 = gate("MUX2_X1", CellKind::Mux2, 5.0_um2, 1.3_fF,
                             23.0_kOhm, 161.0_ps, 94_nW, 1.9_fJ);

  for (const auto& base : {inv, buf, nand2, nand3, nor2, nor3, and2, or2,
                           xor2, xnor2, aoi21, oai21, mux2}) {
    lib.add(base);
    lib.add(scale_drive(base, 2));
    lib.add(scale_drive(base, 4));
  }

  // Flip-flops (always-on in SCPG; the dominant always-on leakage term).
  {
    CellSpec dff = gate("DFF_X1", CellKind::Dff, 14.0_um2, 1.2_fF,
                        21.0_kOhm, 0.0_ps, 520_nW, 3.2_fJ);
    dff.leak_state_spread = 0.15;
    dff.clk_to_q = 280.0_ps;
    dff.setup = 100.0_ps;
    dff.hold = 50.0_ps;
    lib.add(dff);
    CellSpec dffr = dff;
    dffr.name = "DFFR_X1";
    dffr.kind = CellKind::DffR;
    dffr.area = 16.0_um2;
    dffr.leakage = 560_nW;
    lib.add(dffr);
  }

  // Isolation clamps (always-on; inserted on every gated-domain output).
  {
    CellSpec isl = gate("ISOLO_X1", CellKind::IsoLo, 3.5_um2, 1.1_fF,
                        21.0_kOhm, 168.0_ps, 70_nW, 1.6_fJ);
    lib.add(isl);
    CellSpec ish = isl;
    ish.name = "ISOHI_X1";
    ish.kind = CellKind::IsoHi;
    lib.add(ish);
  }

  // Retention balloon (traditional power gating): a tiny always-on
  // high-Vt shadow latch per register.
  {
    CellSpec rb = gate("RETBAL_X1", CellKind::RetBal, 4.2_um2, 0.8_fF,
                       45.0_kOhm, 300.0_ps, 30_nW, 0.8_fJ);
    rb.leak_state_spread = 0.1;
    lib.add(rb);
  }

  // Tie cells (the isolation controller senses the virtual rail through a
  // TIEHI placed inside the gated domain, per the paper's Fig 3).
  {
    CellSpec th = gate("TIEHI_X1", CellKind::TieHi, 1.4_um2, 0.0_fF,
                       40.0_kOhm, 50.0_ps, 10_nW, 0.0_fJ);
    lib.add(th);
    CellSpec tl = th;
    tl.name = "TIELO_X1";
    tl.kind = CellKind::TieLo;
    lib.add(tl);
  }

  // High-Vt PMOS sleep headers.  Ron halves per size step; OFF leakage and
  // gate capacitance grow with width.  These set the SCPG overhead terms:
  // gate-cap switching every cycle, residual OFF leakage while gated, and
  // the IR drop / rail recharge rate while active.
  struct Hdr {
    int drive;
    Resistance ron;
    Power off_leak;
    Capacitance cg;
    Area area;
  };
  const Hdr hdrs[] = {
      {1, Resistance{400.0}, 110_nW, 25_fF, 15.0_um2},
      {2, Resistance{200.0}, 220_nW, 50_fF, 28.0_um2},
      {4, Resistance{100.0}, 440_nW, 100_fF, 54.0_um2},
      {8, Resistance{50.0}, 880_nW, 200_fF, 105.0_um2},
  };
  for (const auto& h : hdrs) {
    CellSpec s;
    s.name = "HDR_X" + std::to_string(h.drive);
    s.kind = CellKind::Header;
    s.drive = h.drive;
    s.area = h.area;
    s.input_cap = 2.0_fF; // NSLEEP control pin
    s.drive_res = h.ron;
    s.leakage = h.off_leak; // state-averaged ~ OFF (headers idle when off)
    s.leak_state_spread = 0.0;
    s.header_ron = h.ron;
    s.header_off_leak = h.off_leak;
    s.header_gate_cap = h.cg;
    lib.add(s);
  }

  return lib;
}

} // namespace scpg
