#include "tech/logic.hpp"

#include <array>

#include "util/error.hpp"

namespace scpg {

bool to_bool(Logic v) {
  SCPG_REQUIRE(is_known(v), "to_bool on an X/Z logic value");
  return v == Logic::L1;
}

char logic_char(Logic v) {
  switch (v) {
    case Logic::L0: return '0';
    case Logic::L1: return '1';
    case Logic::X: return 'x';
    case Logic::Z: return 'z';
  }
  return '?';
}

std::string_view kind_name(CellKind k) {
  switch (k) {
    case CellKind::Inv: return "INV";
    case CellKind::Buf: return "BUF";
    case CellKind::Nand2: return "NAND2";
    case CellKind::Nand3: return "NAND3";
    case CellKind::Nor2: return "NOR2";
    case CellKind::Nor3: return "NOR3";
    case CellKind::And2: return "AND2";
    case CellKind::Or2: return "OR2";
    case CellKind::Xor2: return "XOR2";
    case CellKind::Xnor2: return "XNOR2";
    case CellKind::Aoi21: return "AOI21";
    case CellKind::Oai21: return "OAI21";
    case CellKind::Mux2: return "MUX2";
    case CellKind::Dff: return "DFF";
    case CellKind::DffR: return "DFFR";
    case CellKind::IsoLo: return "ISOLO";
    case CellKind::IsoHi: return "ISOHI";
    case CellKind::TieHi: return "TIEHI";
    case CellKind::TieLo: return "TIELO";
    case CellKind::Header: return "HEADER";
    case CellKind::RetBal: return "RETBAL";
    case CellKind::Macro: return "MACRO";
  }
  return "?";
}

int kind_num_inputs(CellKind k) {
  switch (k) {
    case CellKind::Inv:
    case CellKind::Buf:
    case CellKind::RetBal:
      return 1;
    case CellKind::Nand2:
    case CellKind::Nor2:
    case CellKind::And2:
    case CellKind::Or2:
    case CellKind::Xor2:
    case CellKind::Xnor2:
    case CellKind::IsoLo:
    case CellKind::IsoHi:
      return 2;
    case CellKind::Nand3:
    case CellKind::Nor3:
    case CellKind::Aoi21:
    case CellKind::Oai21:
    case CellKind::Mux2:
      return 3;
    case CellKind::Dff:
      return 2; // D, CK
    case CellKind::DffR:
      return 3; // D, CK, RN
    case CellKind::TieHi:
    case CellKind::TieLo:
      return 0;
    case CellKind::Header:
      return 1; // NSLEEP
    case CellKind::Macro:
      return -1; // variable; described by the MacroSpec
  }
  return -1;
}

namespace {

// 4-state primitives.  Z on an input reads as X (a floating CMOS input).
Logic norm(Logic v) { return v == Logic::Z ? Logic::X : v; }

Logic l_not(Logic a) {
  a = norm(a);
  if (a == Logic::X) return Logic::X;
  return from_bool(a == Logic::L0);
}

Logic l_and(Logic a, Logic b) {
  a = norm(a);
  b = norm(b);
  if (a == Logic::L0 || b == Logic::L0) return Logic::L0;
  if (a == Logic::X || b == Logic::X) return Logic::X;
  return Logic::L1;
}

Logic l_or(Logic a, Logic b) {
  a = norm(a);
  b = norm(b);
  if (a == Logic::L1 || b == Logic::L1) return Logic::L1;
  if (a == Logic::X || b == Logic::X) return Logic::X;
  return Logic::L0;
}

Logic l_xor(Logic a, Logic b) {
  a = norm(a);
  b = norm(b);
  if (a == Logic::X || b == Logic::X) return Logic::X;
  return from_bool(a != b);
}

} // namespace

Logic eval_cell(CellKind k, std::span<const Logic> inputs) {
  SCPG_REQUIRE(int(inputs.size()) == kind_num_inputs(k),
               "eval_cell: wrong input count");
  switch (k) {
    case CellKind::Inv: return l_not(inputs[0]);
    case CellKind::Buf: return norm(inputs[0]);
    case CellKind::RetBal:
      // The balloon shadows its master while powered; an X master (power
      // collapsed) leaves the balloon holding its last value — the
      // simulator's domain save/restore models the retained state, so the
      // combinational view simply passes the value through.
      return norm(inputs[0]);
    case CellKind::Nand2: return l_not(l_and(inputs[0], inputs[1]));
    case CellKind::Nand3:
      return l_not(l_and(l_and(inputs[0], inputs[1]), inputs[2]));
    case CellKind::Nor2: return l_not(l_or(inputs[0], inputs[1]));
    case CellKind::Nor3:
      return l_not(l_or(l_or(inputs[0], inputs[1]), inputs[2]));
    case CellKind::And2: return l_and(inputs[0], inputs[1]);
    case CellKind::Or2: return l_or(inputs[0], inputs[1]);
    case CellKind::Xor2: return l_xor(inputs[0], inputs[1]);
    case CellKind::Xnor2: return l_not(l_xor(inputs[0], inputs[1]));
    case CellKind::Aoi21:
      return l_not(l_or(l_and(inputs[0], inputs[1]), inputs[2]));
    case CellKind::Oai21:
      return l_not(l_and(l_or(inputs[0], inputs[1]), inputs[2]));
    case CellKind::Mux2: {
      const Logic a = norm(inputs[0]), b = norm(inputs[1]),
                  s = norm(inputs[2]);
      if (s == Logic::L0) return a;
      if (s == Logic::L1) return b;
      // Unknown select: output is known only if both data inputs agree.
      if (a == b && is_known(a)) return a;
      return Logic::X;
    }
    case CellKind::IsoLo: {
      // inputs = {A, NISO}; NISO low forces clamp to 0.
      const Logic niso = norm(inputs[1]);
      if (niso == Logic::L0) return Logic::L0;
      if (niso == Logic::L1) return norm(inputs[0]);
      return norm(inputs[0]) == Logic::L0 ? Logic::L0 : Logic::X;
    }
    case CellKind::IsoHi: {
      const Logic niso = norm(inputs[1]);
      if (niso == Logic::L0) return Logic::L1;
      if (niso == Logic::L1) return norm(inputs[0]);
      return norm(inputs[0]) == Logic::L1 ? Logic::L1 : Logic::X;
    }
    case CellKind::TieHi: return Logic::L1;
    case CellKind::TieLo: return Logic::L0;
    case CellKind::Dff:
    case CellKind::DffR:
    case CellKind::Header:
    case CellKind::Macro:
      throw PreconditionError(
          "eval_cell called on a non-combinational cell kind");
  }
  return Logic::X;
}

bool eval_cell_bool(CellKind k, std::span<const bool> inputs) {
  SCPG_REQUIRE(int(inputs.size()) == kind_num_inputs(k),
               "eval_cell_bool: wrong input count");
  std::array<Logic, 4> lv{};
  for (std::size_t i = 0; i < inputs.size(); ++i) lv[i] = from_bool(inputs[i]);
  return to_bool(eval_cell(k, std::span<const Logic>(lv.data(),
                                                     inputs.size())));
}

} // namespace scpg
