#include "tech/liberty.hpp"

#include <cctype>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace scpg {

using namespace scpg::literals;

namespace {

CellKind kind_from_name(const std::string& s, const std::string& src,
                        int line) {
  for (int k = 0; k <= int(CellKind::Macro); ++k)
    if (kind_name(CellKind(k)) == s) return CellKind(k);
  throw ParseError("unknown cell kind '" + s + "'", src, line);
}

void emit_cell(std::ostream& os, const CellSpec& s) {
  os << "  cell(" << s.name << ") {\n";
  os << "    kind " << kind_name(s.kind) << "; drive " << s.drive << ";\n";
  os << "    area_um2 " << in_um2(s.area) << "; input_cap_ff "
     << in_fF(s.input_cap) << "; output_cap_ff " << in_fF(s.output_cap)
     << ";\n";
  os << "    drive_res_kohm " << in_kOhm(s.drive_res)
     << "; intrinsic_delay_ps " << in_ps(s.intrinsic_delay) << ";\n";
  os << "    leakage_nw " << in_nW(s.leakage) << "; leak_state_spread "
     << s.leak_state_spread << "; internal_energy_fj "
     << in_fJ(s.internal_energy) << ";\n";
  if (s.is_sequential())
    os << "    setup_ps " << in_ps(s.setup) << "; hold_ps " << in_ps(s.hold)
       << "; clk_to_q_ps " << in_ps(s.clk_to_q) << ";\n";
  if (s.is_header())
    os << "    header_ron_ohm " << s.header_ron.v << "; header_off_leak_nw "
       << in_nW(s.header_off_leak) << "; header_gate_cap_ff "
       << in_fF(s.header_gate_cap) << ";\n";
  os << "  }\n";
}

/// Tokeniser: identifiers/numbers, and the punctuation ( ) { } ;
struct Lexer {
  explicit Lexer(std::istream& is) : is_(is) {}

  struct Token {
    std::string text;
    int line{1};
    bool eof{false};
  };

  Token next() {
    skip_ws();
    Token t;
    t.line = line_;
    int c = is_.peek();
    if (c == EOF) {
      t.eof = true;
      return t;
    }
    if (c == '(' || c == ')' || c == '{' || c == '}' || c == ';') {
      t.text = char(is_.get());
      return t;
    }
    while (c != EOF && !std::isspace(c) && c != '(' && c != ')' &&
           c != '{' && c != '}' && c != ';') {
      t.text += char(is_.get());
      c = is_.peek();
    }
    return t;
  }

  void skip_ws() {
    for (;;) {
      int c = is_.peek();
      if (c == '\n') {
        ++line_;
        is_.get();
      } else if (std::isspace(c)) {
        is_.get();
      } else if (c == '#') { // comment to end of line
        while (c != EOF && c != '\n') c = is_.get();
        if (c == '\n') ++line_;
      } else {
        break;
      }
    }
  }

  std::istream& is_;
  int line_{1};
};

struct Parser {
  Parser(std::istream& is, std::string source)
      : lex_(is), src_(std::move(source)) {
    advance();
  }

  void advance() { tok_ = lex_.next(); }

  void expect(const std::string& s) {
    if (tok_.eof || tok_.text != s)
      throw ParseError("expected '" + s + "', got '" +
                           (tok_.eof ? "<eof>" : tok_.text) + "'",
                       src_, tok_.line);
    advance();
  }

  std::string ident() {
    if (tok_.eof)
      throw ParseError("unexpected end of input", src_, tok_.line);
    std::string s = tok_.text;
    advance();
    return s;
  }

  double number() {
    const int line = tok_.line;
    const std::string s = ident();
    try {
      std::size_t pos = 0;
      const double v = std::stod(s, &pos);
      if (pos != s.size()) throw std::invalid_argument(s);
      return v;
    } catch (const std::exception&) {
      throw ParseError("expected a number, got '" + s + "'", src_, line);
    }
  }

  Lexer lex_;
  std::string src_;
  Lexer::Token tok_;
};

TechParams parse_tech(Parser& p) {
  TechParams tp;
  p.expect("{");
  while (!p.tok_.eof && p.tok_.text != "}") {
    const int line = p.tok_.line;
    const std::string key = p.ident();
    const double v = p.number();
    p.expect(";");
    if (key == "vdd_nom") tp.vdd_nom = Voltage{v};
    else if (key == "vt") tp.vt = Voltage{v};
    else if (key == "alpha") tp.alpha = v;
    else if (key == "n_vt") tp.n_vt = Voltage{v};
    else if (key == "dibl_per_v") tp.dibl_per_v = v;
    else if (key == "leak_t2x_c") tp.leak_t2x_c = v;
    else if (key == "temp_nom_c") tp.temp_nom_c = v;
    else if (key == "delay_tempco_per_c") tp.delay_tempco_per_c = v;
    else if (key == "min_vdd") tp.min_vdd = Voltage{v};
    else
      throw ParseError("unknown tech attribute '" + key + "'", p.src_, line);
  }
  p.expect("}");
  return tp;
}

CellSpec parse_cell(Parser& p, const std::string& name) {
  CellSpec s;
  s.name = name;
  p.expect("{");
  while (!p.tok_.eof && p.tok_.text != "}") {
    const int line = p.tok_.line;
    const std::string key = p.ident();
    if (key == "kind") {
      s.kind = kind_from_name(p.ident(), p.src_, line);
    } else {
      const double v = p.number();
      if (key == "drive") s.drive = int(v);
      else if (key == "area_um2") s.area = Area{v * 1e-12};
      else if (key == "input_cap_ff") s.input_cap = Capacitance{v * 1e-15};
      else if (key == "output_cap_ff") s.output_cap = Capacitance{v * 1e-15};
      else if (key == "drive_res_kohm") s.drive_res = Resistance{v * 1e3};
      else if (key == "intrinsic_delay_ps")
        s.intrinsic_delay = Time{v * 1e-12};
      else if (key == "leakage_nw") s.leakage = Power{v * 1e-9};
      else if (key == "leak_state_spread") s.leak_state_spread = v;
      else if (key == "internal_energy_fj")
        s.internal_energy = Energy{v * 1e-15};
      else if (key == "setup_ps") s.setup = Time{v * 1e-12};
      else if (key == "hold_ps") s.hold = Time{v * 1e-12};
      else if (key == "clk_to_q_ps") s.clk_to_q = Time{v * 1e-12};
      else if (key == "header_ron_ohm") s.header_ron = Resistance{v};
      else if (key == "header_off_leak_nw")
        s.header_off_leak = Power{v * 1e-9};
      else if (key == "header_gate_cap_ff")
        s.header_gate_cap = Capacitance{v * 1e-15};
      else
        throw ParseError("unknown cell attribute '" + key + "'", p.src_,
                         line);
    }
    p.expect(";");
  }
  p.expect("}");
  return s;
}

} // namespace

void write_liberty(const Library& lib, std::ostream& os) {
  const TechParams& tp = lib.tech().params();
  os << std::setprecision(10);
  os << "library(" << lib.name() << ") {\n";
  os << "  tech {\n";
  os << "    vdd_nom " << tp.vdd_nom.v << "; vt " << tp.vt.v << "; alpha "
     << tp.alpha << "; n_vt " << tp.n_vt.v << ";\n";
  os << "    dibl_per_v " << tp.dibl_per_v << "; leak_t2x_c " << tp.leak_t2x_c
     << "; temp_nom_c " << tp.temp_nom_c << ";\n";
  os << "    delay_tempco_per_c " << tp.delay_tempco_per_c << "; min_vdd "
     << tp.min_vdd.v << ";\n";
  os << "  }\n";
  for (const auto& s : lib.specs()) emit_cell(os, s);
  os << "}\n";
}

std::string write_liberty_string(const Library& lib) {
  std::ostringstream os;
  write_liberty(lib, os);
  return os.str();
}

Library read_liberty(std::istream& is, const std::string& source) {
  Parser p(is, source);
  p.expect("library");
  p.expect("(");
  const std::string name = p.ident();
  p.expect(")");
  p.expect("{");

  // The tech block must come first so the Library can be constructed.
  if (p.tok_.text != "tech")
    throw ParseError("library must start with a tech block", p.src_,
                     p.tok_.line);
  p.advance();
  const TechParams tp = parse_tech(p);
  Library lib(name, TechModel{tp});

  while (!p.tok_.eof && p.tok_.text != "}") {
    p.expect("cell");
    p.expect("(");
    const std::string cname = p.ident();
    p.expect(")");
    lib.add(parse_cell(p, cname));
  }
  p.expect("}");
  return lib;
}

Library read_liberty_string(const std::string& text,
                            const std::string& source) {
  std::istringstream is(text);
  return read_liberty(is, source);
}

} // namespace scpg
