// Four-state logic values and combinational evaluation.
//
// The simulator and the equivalence checks share one evaluation routine per
// cell kind, operating on 4-state logic (0, 1, X = unknown, Z = undriven).
// X propagates pessimistically except where a controlling input decides the
// output (e.g. a 0 on a NAND input forces 1 regardless of the other input).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace scpg {

enum class Logic : std::uint8_t {
  L0 = 0,
  L1 = 1,
  X = 2, ///< unknown / corrupted (e.g. output of a collapsed power domain)
  Z = 3, ///< undriven
};

[[nodiscard]] constexpr bool is_known(Logic v) {
  return v == Logic::L0 || v == Logic::L1;
}

[[nodiscard]] constexpr Logic from_bool(bool b) {
  return b ? Logic::L1 : Logic::L0;
}

/// Converts a known value to bool; X/Z are a caller error.
[[nodiscard]] bool to_bool(Logic v);

[[nodiscard]] char logic_char(Logic v);

/// Kind of every leaf cell the library provides.
enum class CellKind : std::uint8_t {
  Inv,
  Buf,
  Nand2,
  Nand3,
  Nor2,
  Nor3,
  And2,
  Or2,
  Xor2,
  Xnor2,
  Aoi21, ///< Y = !((A & B) | C)
  Oai21, ///< Y = !((A | B) & C)
  Mux2,  ///< Y = S ? B : A
  Dff,   ///< D flip-flop, posedge CK
  DffR,  ///< D flip-flop with async active-low reset RN
  IsoLo, ///< isolation clamp-to-0: Y = NISO ? A : 0   (NISO active low)
  IsoHi, ///< isolation clamp-to-1: Y = NISO ? A : 1
  TieHi,
  TieLo,
  Header, ///< high-Vt PMOS sleep header (power network, not logic)
  RetBal, ///< always-on retention balloon (traditional PG state keeper)
  Macro,  ///< behavioural hard macro (ROM/RAM); evaluated by the simulator
};

[[nodiscard]] std::string_view kind_name(CellKind k);

/// True for state-holding cells (flip-flops).
[[nodiscard]] constexpr bool kind_is_sequential(CellKind k) {
  return k == CellKind::Dff || k == CellKind::DffR;
}

/// True for cells that participate in combinational evaluation.
[[nodiscard]] constexpr bool kind_is_combinational(CellKind k) {
  switch (k) {
    case CellKind::Dff:
    case CellKind::DffR:
    case CellKind::Header:
    case CellKind::Macro:
      return false;
    default:
      return true;
  }
}

/// Number of logic input pins for a (non-macro) cell kind.
[[nodiscard]] int kind_num_inputs(CellKind k);

/// Evaluates a combinational cell over 4-state inputs.
/// `inputs.size()` must equal kind_num_inputs(k).
/// Isolation cells expect inputs ordered {A, NISO}; Mux2 expects {A, B, S}.
[[nodiscard]] Logic eval_cell(CellKind k, std::span<const Logic> inputs);

/// Boolean reference model used by tests (all inputs known).
[[nodiscard]] bool eval_cell_bool(CellKind k, std::span<const bool> inputs);

} // namespace scpg
