#include "tech/tech_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace scpg {

TechModel::TechModel(TechParams p) : p_(p) {
  SCPG_REQUIRE(p_.vdd_nom.v > p_.vt.v,
               "nominal supply must be above threshold");
  if (p_.leak_char_vt.v <= 0.0) p_.leak_char_vt = p_.vt;
  SCPG_REQUIRE(p_.n_vt.v > 0 && p_.alpha > 0, "bad tech parameters");
  // Blend point between exponential (sub-threshold) and alpha-power
  // (super-threshold) conduction: a couple of thermal slopes above Vt.
  v_seam_ = p_.vt.v + 2.0 * p_.n_vt.v;
  i_nom_ = drive_current(p_.vdd_nom.v);
}

double TechModel::drive_current(double v) const {
  SCPG_REQUIRE(v > 0, "drive current requires a positive supply");
  const double vt = p_.vt.v;
  const auto super = [&](double vv) {
    return std::pow(vv - vt, p_.alpha);
  };
  if (v >= v_seam_) return super(v);
  // Exponential sub-threshold region, continuous with the super-threshold
  // law at the seam.
  const double i_seam = super(v_seam_);
  return i_seam * std::exp((v - v_seam_) / p_.n_vt.v);
}

double TechModel::delay_scale(Corner c) const {
  SCPG_REQUIRE(c.vdd.v >= p_.min_vdd.v,
               "supply below the model's credible range");
  const double v = c.vdd.v;
  const double t_v = (v / drive_current(v)) /
                     (p_.vdd_nom.v / i_nom_);
  const double t_temp =
      1.0 + p_.delay_tempco_per_c * (c.temp_c - p_.temp_nom_c);
  return t_v * t_temp;
}

double TechModel::leak_scale(Corner c) const {
  SCPG_REQUIRE(c.vdd.v >= 0, "negative supply");
  const double dv = c.vdd.v - p_.vdd_nom.v;
  const double f_v = (c.vdd.v / p_.vdd_nom.v) *
                     std::exp(p_.dibl_per_v * dv);
  const double f_t = std::pow(2.0, (c.temp_c - p_.temp_nom_c) / p_.leak_t2x_c);
  // Process corner: sub-threshold leakage is exponential in Vt.
  const double f_vt = std::exp((p_.leak_char_vt.v - p_.vt.v) / p_.n_vt.v);
  return f_v * f_t * f_vt;
}

double TechModel::energy_scale(Corner c) const {
  const double r = c.vdd.v / p_.vdd_nom.v;
  return r * r;
}

double TechModel::on_current_scale(Voltage v) const {
  return drive_current(v.v) / i_nom_;
}

} // namespace scpg
