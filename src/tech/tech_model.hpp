// Technology voltage/temperature scaling model.
//
// This is the substitute for the foundry transistor models behind the
// paper's HSpice runs (Synopsys 90 nm Education Kit).  Cell timing, leakage
// and switching energy are characterised at a nominal corner and scaled to
// the operating corner with first-order device physics:
//
//  * delay   — alpha-power law above threshold
//              (t ~ V / (V - Vt)^alpha, Sakurai–Newton), blending into an
//              exponential sub-threshold law (t ~ V / exp((V - Vt)/(n*vT)))
//              below the crossover, continuous at the seam;
//  * leakage — sub-threshold conduction with a DIBL-style supply
//              sensitivity (I ~ exp(kd * (V - Vnom))) and a temperature
//              factor (doubling every `leak_t2x_c` degrees);
//  * energy  — CV^2 scaling of switched and internal energy.
//
// These laws capture what the paper's experiments actually consume: the
// relative balance of dynamic power, leakage power and gating overhead
// across supply voltage and clock frequency (see DESIGN.md §2).
#pragma once

#include "util/units.hpp"

namespace scpg {

/// Operating corner: supply voltage and junction temperature.
struct Corner {
  Voltage vdd{1.0};
  double temp_c{25.0};
};

/// Device-physics parameters of a process node.
struct TechParams {
  Voltage vdd_nom{1.0};   ///< characterisation voltage
  Voltage vt{0.42};       ///< effective threshold voltage (regular-Vt)
  double alpha{1.6};      ///< velocity-saturation exponent
  Voltage n_vt{0.040};    ///< n * kT/q  (sub-threshold slope / ln 10 ~ 92 mV/dec)
  double dibl_per_v{2.6}; ///< leakage supply sensitivity d(ln I)/dV
  /// Threshold voltage at which cell leakage numbers were characterised.
  /// When `vt` is shifted away from it (process-variation corners),
  /// sub-threshold leakage scales by exp((leak_char_vt - vt)/n_vt).
  /// Zero means "same as vt" (no shift).
  Voltage leak_char_vt{0.0};
  double leak_t2x_c{11.0};///< leakage doubles every this many deg C
  double temp_nom_c{25.0};
  double delay_tempco_per_c{0.0012}; ///< fractional delay increase per deg C
  Voltage min_vdd{0.15};  ///< below this the model is not credible
};

/// Scaling engine; immutable once constructed.
class TechModel {
public:
  explicit TechModel(TechParams p);

  [[nodiscard]] const TechParams& params() const { return p_; }

  /// Multiplier on characterised delay at the given corner (1.0 at nominal).
  [[nodiscard]] double delay_scale(Corner c) const;

  /// Multiplier on characterised leakage power at the given corner.
  [[nodiscard]] double leak_scale(Corner c) const;

  /// Multiplier on characterised switched/internal energy (CV^2).
  [[nodiscard]] double energy_scale(Corner c) const;

  /// Multiplier on drive resistance (delay_scale relative to capacitive
  /// load is carried entirely by resistance; caps are voltage-independent).
  [[nodiscard]] double resistance_scale(Corner c) const { return delay_scale(c); }

  /// On-current relative to nominal at supply v (used by the header IR-drop
  /// model); inverse of the voltage part of delay scaling.
  [[nodiscard]] double on_current_scale(Voltage v) const;

  /// True when the corner is in the sub-threshold regime (V < Vt).
  [[nodiscard]] bool is_subthreshold(Corner c) const {
    return c.vdd.v < p_.vt.v;
  }

private:
  // Normalised drive current i(v) with i(vdd_nom) == 1, continuous across
  // the sub-threshold / super-threshold seam.
  [[nodiscard]] double drive_current(double v) const;

  TechParams p_;
  double i_nom_{1.0};     // unnormalised drive current at vdd_nom
  double v_seam_{0.0};    // blend point between the two delay laws
};

} // namespace scpg
