// Standard-cell library: characterised cell data at the nominal corner.
//
// This is the substitute for the Synopsys 90 nm Education Kit used by the
// paper (DESIGN.md §2).  Each cell carries area, pin capacitance, drive
// resistance, intrinsic delay, state-averaged leakage (with a spread across
// input states), and internal energy per output transition, all at the
// nominal corner; the TechModel scales them to any operating corner.
//
// Header (sleep transistor) cells additionally carry the virtual-rail on
// resistance, OFF-state leakage and gate capacitance that drive the SCPG
// overhead model.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tech/logic.hpp"
#include "tech/tech_model.hpp"
#include "util/units.hpp"

namespace scpg {

/// Index of a CellSpec within its Library.
using SpecId = std::uint32_t;
inline constexpr SpecId kInvalidSpec = ~SpecId{0};

/// Characterised data of one library cell at the nominal corner.
struct CellSpec {
  std::string name;  ///< e.g. "NAND2_X1"
  CellKind kind{CellKind::Inv};
  int drive{1};      ///< drive strength (X1, X2, X4, X8)

  Area area{};
  Capacitance input_cap{};  ///< per input pin
  Capacitance output_cap{}; ///< parasitic self-load on the output
  Resistance drive_res{};   ///< output drive resistance
  Time intrinsic_delay{};   ///< load-independent delay component
  Power leakage{};          ///< state-averaged leakage power
  double leak_state_spread{0.3}; ///< +/- fraction across input states
  Energy internal_energy{}; ///< short-circuit/internal energy per output
                            ///< transition

  // Sequential cells only.
  Time setup{};
  Time hold{};
  Time clk_to_q{};

  // Header cells only.
  Resistance header_ron{};      ///< virtual-rail series resistance when ON
  Power header_off_leak{};      ///< residual leakage through the OFF header
  Capacitance header_gate_cap{};///< gate cap toggled by the sleep control

  [[nodiscard]] bool is_sequential() const { return kind_is_sequential(kind); }
  [[nodiscard]] bool is_header() const { return kind == CellKind::Header; }
};

/// Leakage of a cell in a specific input state (known inputs shift the
/// state-averaged number by up to +/- leak_state_spread/2; unknown inputs
/// fall back to the average).
[[nodiscard]] Power leakage_in_state(const CellSpec& spec,
                                     std::span<const Logic> inputs);

/// Name of input pin `i` of a cell kind, as used in structural Verilog.
[[nodiscard]] std::string_view input_pin_name(CellKind k, int i);

/// Name of the output pin ("Y" for gates, "Q" for flops).
[[nodiscard]] std::string_view output_pin_name(CellKind k);

/// A characterised standard-cell library bound to a technology model.
class Library {
public:
  Library(std::string name, TechModel tech);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const TechModel& tech() const { return tech_; }

  /// Adds a spec; the name must be unique.  Returns its id.
  SpecId add(CellSpec spec);

  [[nodiscard]] const CellSpec& spec(SpecId id) const;
  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] std::span<const CellSpec> specs() const { return specs_; }

  /// Looks a cell up by name; nullopt if absent.
  [[nodiscard]] std::optional<SpecId> find(std::string_view name) const;

  /// Looks a cell up by name; throws if absent.
  [[nodiscard]] SpecId id_of(std::string_view name) const;

  /// Picks the cell of a kind at a given drive strength; throws if absent.
  [[nodiscard]] SpecId pick(CellKind kind, int drive = 1) const;

  /// All drive strengths available for a kind, ascending.
  [[nodiscard]] std::vector<int> drives_of(CellKind kind) const;

  /// Builds the calibrated synthetic 90 nm-class library used throughout
  /// the reproduction (see DESIGN.md §5 for calibration targets).
  /// `tech_override` replaces the technology parameters (e.g. a shifted
  /// threshold voltage for process-variation studies) while keeping the
  /// cell characterisation.
  static Library scpg90(std::optional<TechParams> tech_override =
                            std::nullopt);

private:
  std::string name_;
  TechModel tech_;
  std::vector<CellSpec> specs_;
  std::unordered_map<std::string, SpecId> by_name_;
};

} // namespace scpg
