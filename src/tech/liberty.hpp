// Liberty-lite: a small text interchange format for cell libraries.
//
// The real flow consumes Synopsys .lib files; this reproduction uses a
// reduced dialect carrying exactly the attributes our analyses need, so a
// library can be dumped, reviewed, edited and re-loaded:
//
//   library(scpg90) {
//     tech { vdd_nom 1.0; vt 0.2; ... }
//     cell(NAND2_X1) { kind NAND2; area_um2 2.8; ... }
//   }
//
// Attribute values are plain numbers in the unit named by the attribute
// suffix (_um2, _ff, _kohm, _ps, _nw, _fj, _ohm).
#pragma once

#include <iosfwd>
#include <string>

#include "tech/library.hpp"

namespace scpg {

/// Serialises a library (tech parameters + every cell) to Liberty-lite.
void write_liberty(const Library& lib, std::ostream& os);
[[nodiscard]] std::string write_liberty_string(const Library& lib);

/// Parses a Liberty-lite document; throws ParseError on malformed input.
/// `source` names the input (file path) in parse diagnostics.
[[nodiscard]] Library read_liberty(std::istream& is,
                                   const std::string& source = "<liberty>");
[[nodiscard]] Library read_liberty_string(const std::string& text,
                                          const std::string& source =
                                              "<string>");

} // namespace scpg
