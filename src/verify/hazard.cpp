#include "verify/hazard.hpp"

#include <sstream>

#include "util/table.hpp"

namespace scpg::verify {

std::string_view hazard_kind_name(HazardKind k) {
  switch (k) {
    case HazardKind::XCrossing: return "x-crossing";
    case HazardKind::XCapture: return "x-capture";
    case HazardKind::IsolationLateAtCollapse: return "iso-late-at-collapse";
    case HazardKind::IsolationReleasedEarly: return "iso-released-early";
    case HazardKind::SampleWhileCollapsed: return "sample-while-collapsed";
    case HazardKind::RailNotReadyAtSample: return "rail-not-ready";
    case HazardKind::SetupViolation: return "setup-violation";
    case HazardKind::HoldViolation: return "hold-violation";
    case HazardKind::SpuriousStateFlip: return "spurious-state-flip";
  }
  return "?";
}

void HazardLog::add(HazardReport r) {
  ++total_;
  ++by_kind_[static_cast<std::size_t>(r.kind)];
  if (reports_.size() < cap_)
    reports_.push_back(std::move(r));
  else
    ++dropped_;
}

std::string format_hazard(const HazardReport& r) {
  std::ostringstream os;
  os << "cycle " << r.cycle << " @" << r.t << "fs ["
     << domain_phase_name(r.phase) << "] " << hazard_kind_name(r.kind);
  if (!r.net_name.empty()) os << " net " << r.net_name;
  if (!r.detail.empty()) os << ": " << r.detail;
  return os.str();
}

std::string format_hazard_summary(const HazardLog& log) {
  TextTable t("hazard summary");
  t.header({"hazard", "count"});
  for (int i = 0; i < kNumHazardKinds; ++i) {
    const auto k = static_cast<HazardKind>(i);
    if (log.count(k) == 0) continue;
    t.row({std::string(hazard_kind_name(k)), std::to_string(log.count(k))});
  }
  if (log.empty()) t.row({"(none)", "0"});
  std::ostringstream os;
  t.print(os);
  if (log.dropped() > 0)
    os << "(" << log.dropped() << " reports dropped past the log cap)\n";
  return os.str();
}

} // namespace scpg::verify
