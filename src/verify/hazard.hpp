// Structured hazard reports for SCPG runtime verification.
//
// Every monitor in src/verify/monitors.hpp reduces a detected contract
// violation to a HazardReport: which rule broke (HazardKind), when
// (simulation time + clock cycle), where (the offending net, by id and
// name), and in which rail phase of the paper's Fig 4 timing diagram the
// domain was at the instant of detection.  HazardLog collects reports with
// a hard cap so a pathologically broken design cannot exhaust memory.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/ids.hpp"
#include "sim/simulator.hpp"

namespace scpg::verify {

/// The SCPG safety contract, one clause per enumerator.
enum class HazardKind : std::uint8_t {
  /// An X escaped the gated domain into always-on logic: a net the
  /// isolation clamps are responsible for went unknown.
  XCrossing,
  /// An always-on flip-flop sampled an unknown value (state corruption).
  XCapture,
  /// The rail crossed the corrupt threshold while at least one isolation
  /// clamp was still transparent (Fig 4: isolation must precede T_PGoff).
  IsolationLateAtCollapse,
  /// An isolation clamp released while the rail was still collapsed or
  /// below the ready threshold (Fig 3 contract: release only on a
  /// recovered rail).
  IsolationReleasedEarly,
  /// A capture clock edge arrived while the gated domain was still
  /// corrupted (T_eval started before T_PGStart finished).
  SampleWhileCollapsed,
  /// The virtual rail was below the ready fraction at a capture edge
  /// (droop watchdog; weaker sibling of SampleWhileCollapsed).
  RailNotReadyAtSample,
  /// A register's D input changed inside its setup window before the
  /// capture edge.
  SetupViolation,
  /// A register's D input changed inside its hold window after the
  /// capture edge.
  HoldViolation,
  /// A flip-flop output changed with no matching sample or reset — the
  /// signature of an injected (or real) single-event upset.
  SpuriousStateFlip,
};

inline constexpr int kNumHazardKinds = 9;

[[nodiscard]] std::string_view hazard_kind_name(HazardKind k);

/// One detected contract violation, with full context.
struct HazardReport {
  HazardKind kind{};
  SimTime t{0};          ///< simulation time of detection (fs)
  long cycle{-1};        ///< clock cycle index at detection (-1 = unknown)
  NetId net{};           ///< offending net (invalid when not net-specific)
  std::string net_name;  ///< name of `net` ("" when not net-specific)
  DomainPhase phase{};   ///< rail phase at detection (Fig 4 context)
  std::string detail;    ///< human-readable specifics
};

/// Bounded collection of hazard reports with per-kind counters.
class HazardLog {
public:
  /// `cap` bounds stored reports; further hazards still count (see
  /// dropped()) but keep no per-report detail.
  explicit HazardLog(std::size_t cap = 4096) : cap_(cap) {}

  void add(HazardReport r);

  [[nodiscard]] const std::vector<HazardReport>& reports() const {
    return reports_;
  }
  [[nodiscard]] bool empty() const { return total_ == 0; }
  /// Total hazards observed, including any dropped past the cap.
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t count(HazardKind k) const {
    return by_kind_[static_cast<std::size_t>(k)];
  }

private:
  std::size_t cap_;
  std::size_t total_{0};
  std::size_t dropped_{0};
  std::size_t by_kind_[kNumHazardKinds]{};
  std::vector<HazardReport> reports_;
};

/// One line per report: "cycle 12 @3.50e+05fs [corrupt] x-crossing net p[3]: ..."
[[nodiscard]] std::string format_hazard(const HazardReport& r);

/// Per-kind summary table (kind, count) for CLI / bench output.
[[nodiscard]] std::string format_hazard_summary(const HazardLog& log);

} // namespace scpg::verify
