#include "verify/monitors.hpp"

#include <limits>
#include <sstream>

namespace scpg::verify {

namespace {
constexpr SimTime kNever = std::numeric_limits<SimTime>::min() / 2;

std::string fs_str(SimTime t) {
  std::ostringstream os;
  os << double(t) * 1e-3 << " ps";
  return os.str();
}
} // namespace

HazardMonitors::HazardMonitors(const Simulator& sim, BoundaryMap map,
                               MonitorConfig cfg)
    : sim_(&sim),
      map_(std::move(map)),
      cfg_(cfg),
      log_(cfg.log_cap),
      vdd_(sim.config().corner.vdd.v) {
  const Netlist& nl = sim.netlist();
  const double dscale = nl.lib().tech().delay_scale(sim.config().corner);

  watch_x_.assign(nl.num_nets(), 0);
  iso_en_.assign(nl.num_nets(), 0);
  last_change_.assign(nl.num_nets(), kNever);
  q_owner_.assign(nl.num_nets(), -1);
  d_watch_.resize(nl.num_nets());
  flop_index_.assign(nl.num_cells(), -1);

  for (const IsoSite& s : map_.iso) {
    watch_x_[s.out.v] = 1;
    iso_en_[s.enable.v] = 1;
  }
  // Unprotected crossings are watched too: they are exactly the nets a
  // dropped/bypassed clamp leaves exposed.
  for (NetId n : map_.unprotected) watch_x_[n.v] = 1;

  for (CellId f : map_.aon_flops) {
    const Cell& c = nl.cell(f);
    const CellSpec& spec = nl.spec_of(f);
    FlopCtx ctx;
    ctx.cell = f;
    ctx.d = c.inputs[0];
    ctx.q = c.outputs[0];
    ctx.setup_fs = to_fs(Time{spec.setup.v * dscale});
    ctx.hold_fs = to_fs(Time{spec.hold.v * dscale});
    flop_index_[f.v] = std::int32_t(flops_.size());
    q_owner_[ctx.q.v] = std::int32_t(flops_.size());
    d_watch_[ctx.d.v].push_back(std::int32_t(flops_.size()));
    flops_.push_back(ctx);
  }

  // Without a clock there is no cycle count to arm on; check immediately.
  if (!map_.clk.valid() || cfg_.arm_after_cycles <= 0) armed_ = true;
}

void HazardMonitors::report(HazardKind k, NetId net, std::string detail) {
  HazardReport r;
  r.kind = k;
  r.t = sim_->now();
  r.cycle = cycle_;
  r.net = net;
  if (net.valid()) r.net_name = sim_->netlist().net(net).name;
  r.phase = phase_;
  r.detail = std::move(detail);
  log_.add(std::move(r));
}

void HazardMonitors::on_net_change(SimTime t, NetId net, Logic oldv,
                                   Logic newv) {
  // --- cycle tracking + capture-edge checks -------------------------------
  if (net == map_.clk && oldv == Logic::L0 && newv == Logic::L1) {
    ++cycle_;
    if (!armed_ && cycle_ >= cfg_.arm_after_cycles) armed_ = true;
    if (armed_ && sim_->has_gated_domain()) {
      if (sim_->rail_corrupted()) {
        if (cfg_.phase_order)
          report(HazardKind::SampleWhileCollapsed, net,
                 "capture edge while the gated domain is collapsed");
      } else if (cfg_.rail_watchdog) {
        const double v = sim_->rail_voltage().v;
        const double need = sim_->config().rail_ready_frac * vdd_;
        if (v + 1e-12 < need) {
          std::ostringstream os;
          os << "rail at " << v << " V, ready threshold " << need << " V";
          report(HazardKind::RailNotReadyAtSample, net, os.str());
        }
      }
    }
  }

  // --- state integrity (consume pending drives even while disarmed) ------
  if (const std::int32_t fi = q_owner_[net.v]; fi >= 0) {
    FlopCtx& f = flops_[std::size_t(fi)];
    // A legitimate drive lands with the scheduled value at exactly the
    // scheduled time; anything else on a Q net is spurious.  The time
    // match matters: a forced flip back to the last sampled value must
    // not be absorbed by a stale pending record.
    if (f.pending && f.pending_v == newv && t == f.pending_due) {
      f.pending = false;
    } else if (armed_ && cfg_.state_integrity && is_known(oldv) &&
               is_known(newv)) {
      report(HazardKind::SpuriousStateFlip, net,
             "output of " + sim_->netlist().cell(f.cell).name +
                 " changed with no sample or reset pending");
    }
  }

  if (armed_) {
    // --- X containment ----------------------------------------------------
    if (cfg_.x_containment && watch_x_[net.v] && !is_known(newv))
      report(HazardKind::XCrossing, net,
             "unknown value escaped the isolation boundary");

    // --- early clamp release (NISO is active-low: 0 -> 1 releases) --------
    if (cfg_.phase_order && iso_en_[net.v] && oldv == Logic::L0 &&
        newv == Logic::L1 && sim_->has_gated_domain()) {
      if (sim_->rail_corrupted()) {
        report(HazardKind::IsolationReleasedEarly, net,
               "clamp released while the rail is collapsed");
      } else {
        const double v = sim_->rail_voltage().v;
        const double need = sim_->config().rail_ready_frac * vdd_;
        if (v + 1e-12 < need) {
          std::ostringstream os;
          os << "clamp released at rail " << v << " V, ready threshold "
             << need << " V";
          report(HazardKind::IsolationReleasedEarly, net, os.str());
        }
      }
    }

    // --- hold windows -----------------------------------------------------
    if (cfg_.timing_checks) {
      for (std::int32_t fi : d_watch_[net.v]) {
        const FlopCtx& f = flops_[std::size_t(fi)];
        if (f.last_sample >= 0 && t - f.last_sample < f.hold_fs)
          report(HazardKind::HoldViolation, net,
                 "D of " + sim_->netlist().cell(f.cell).name + " changed " +
                     fs_str(t - f.last_sample) + " after capture (hold " +
                     fs_str(f.hold_fs) + ")");
      }
    }
  }

  last_change_[net.v] = t;
}

void HazardMonitors::on_domain_phase(SimTime t, DomainPhase phase,
                                     double rail_v) {
  (void)t, (void)rail_v;
  phase_ = phase;
  if (phase == DomainPhase::Corrupt && armed_ && cfg_.phase_order) {
    for (const IsoSite& s : map_.iso) {
      if (sim_->value(s.enable) != Logic::L0)
        report(HazardKind::IsolationLateAtCollapse, s.out,
               "clamp " + sim_->netlist().cell(s.cell).name +
                   " still transparent at rail collapse");
    }
  }
}

void HazardMonitors::on_flop_drive(SimTime t, CellId flop, Logic value,
                                   SimTime due, bool async_reset) {
  (void)due;
  const std::int32_t fi = flop_index_[flop.v];
  if (fi < 0) return;
  FlopCtx& f = flops_[std::size_t(fi)];
  // Mirror the simulator's scheduling rules (schedule_net): re-driving
  // the pending value keeps the original (earliest) landing time; driving
  // the value the net already holds drops the change outright, cancelling
  // any different pending one; anything else puts a new change in flight.
  if (f.pending && f.pending_v == value) {
    // the earlier event stays queued
  } else if (sim_->value(f.q) == value) {
    f.pending = false;
  } else {
    f.pending = true;
    f.pending_v = value;
    f.pending_due = due;
  }
  if (async_reset) return;
  f.last_sample = t;
  if (!armed_) return;
  if (cfg_.x_containment && !is_known(value))
    report(HazardKind::XCapture, f.d,
           sim_->netlist().cell(f.cell).name + " sampled an unknown value");
  if (cfg_.timing_checks && last_change_[f.d.v] != kNever &&
      t - last_change_[f.d.v] < f.setup_fs)
    report(HazardKind::SetupViolation, f.d,
           "D of " + sim_->netlist().cell(f.cell).name + " changed " +
               fs_str(t - last_change_[f.d.v]) + " before capture (setup " +
               fs_str(f.setup_fs) + ")");
}

} // namespace scpg::verify
