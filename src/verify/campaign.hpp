// Fault-injection campaign runner.
//
// run_campaign() ties the verify library together: it applies the
// requested faults to a (copy of a) transformed netlist, builds the
// simulator with hazard monitors attached, drives a (possibly jittered)
// clock plus stimulus, schedules runtime faults, and returns the hazard
// log with per-class injection counts.  Everything is reproducible from
// the seed.
//
// Detection semantics: a campaign with faults is DETECTED if any monitor
// fired; a fault-free campaign on a correct design must come back with an
// empty log (tests/test_verify.cpp proves both directions on the SCPG'd
// multiplier).
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "verify/fault.hpp"
#include "verify/monitors.hpp"

namespace scpg::verify {

struct CampaignOptions {
  Frequency f{1.0e6};
  double duty_high{0.5};
  /// Unmonitored settling cycles (monitors arm after these).
  int warmup_cycles{6};
  /// Monitored cycles.
  int cycles{40};
  std::uint64_t seed{1};
  SimConfig sim{};
  std::string clock_port{"clk"};
  std::string override_port{"override_n"};
  MonitorConfig monitors{};
  std::vector<FaultSpec> faults;
  /// Per-cycle stimulus, called shortly after each rising edge with the
  /// cycle index (0 = first warmup cycle).  Default: reset-style inputs
  /// ("rst...") get a one-cycle active-low reset then stay high; every
  /// other non-control input toggles randomly each cycle.
  std::function<void(Simulator&, int)> stimulus;
};

struct CampaignResult {
  HazardLog hazards;
  long cycles_run{0};
  std::array<int, kNumFaultClasses> injected{};

  [[nodiscard]] int injected_total() const {
    int n = 0;
    for (int c : injected) n += c;
    return n;
  }
  [[nodiscard]] bool detected() const { return !hazards.empty(); }
};

/// Runs one campaign on a copy of `nl` (taken by value: structural faults
/// mutate it).  The netlist must already be SCPG-transformed and contain
/// the named clock port.
[[nodiscard]] CampaignResult run_campaign(Netlist nl,
                                          const CampaignOptions& opt);

} // namespace scpg::verify
