#include "verify/fault.hpp"

#include <algorithm>
#include <cmath>

#include "scpg/rail_model.hpp"
#include "util/error.hpp"
#include "verify/boundary.hpp"

namespace scpg::verify {

std::string_view fault_class_name(FaultClass f) {
  switch (f) {
    case FaultClass::StuckIsolation: return "stuck-isolation";
    case FaultClass::DelayedIsolation: return "delayed-isolation";
    case FaultClass::DroppedClamp: return "dropped-clamp";
    case FaultClass::SlowRailRestore: return "slow-rail-restore";
    case FaultClass::PrematureEdge: return "premature-edge";
    case FaultClass::SeuFlip: return "seu-flip";
  }
  return "?";
}

std::optional<FaultClass> fault_class_from_name(std::string_view name) {
  for (int i = 0; i < kNumFaultClasses; ++i) {
    const auto f = static_cast<FaultClass>(i);
    if (name == fault_class_name(f)) return f;
  }
  return std::nullopt;
}

namespace {

/// Picks ceil(fraction * n) distinct indices (at least 1 when fraction > 0).
std::vector<std::size_t> pick_subset(std::size_t n, double fraction,
                                     Rng& rng) {
  if (n == 0 || fraction <= 0) return {};
  const auto count = std::min<std::size_t>(
      n, std::max<std::size_t>(1, std::size_t(std::ceil(fraction * n))));
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.below(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(count);
  return idx;
}

} // namespace

int inject_stuck_isolation(Netlist& nl, double fraction, Rng& rng) {
  const BoundaryMap map = extract_boundary(nl);
  const auto sel = pick_subset(map.iso.size(), fraction, rng);
  if (sel.empty()) return 0;
  const SpecId hi = nl.lib().pick(CellKind::TieHi, 1);
  const NetId hi_net = nl.add_net("fault_iso_stuck_hi");
  nl.add_cell("u_fault_iso_stuck_hi", hi, {}, hi_net);
  for (std::size_t i : sel) nl.rewire_input(map.iso[i].cell, 1, hi_net);
  nl.check();
  return int(sel.size());
}

int inject_delayed_isolation(Netlist& nl, const SimConfig& cfg,
                             double fraction, Rng& rng) {
  const BoundaryMap map = extract_boundary(nl);
  const auto sel = pick_subset(map.iso.size(), fraction, rng);
  if (sel.empty()) return 0;

  // Chain length: total delay must exceed the rail's corrupt time so the
  // (delayed) engage lands after the collapse.  Both numbers scale with
  // the same corner, so size from corner-scaled values with 2x margin.
  const RailParams rail = extract_rail_params(nl, cfg);
  const double dscale = nl.lib().tech().delay_scale(cfg.corner);
  const SpecId buf = nl.lib().pick(CellKind::Buf, 1);
  const CellSpec& bs = nl.lib().spec(buf);
  const double d_buf =
      (bs.intrinsic_delay.v + bs.drive_res.v * bs.input_cap.v) * dscale;
  const auto chain_len = std::clamp<std::size_t>(
      std::size_t(std::ceil(2.0 * rail.t_corrupt().v / std::max(d_buf, 1e-15))),
      2, 5000);

  NetId prev = map.iso[sel.front()].enable;
  for (std::size_t i = 0; i < chain_len; ++i) {
    const NetId n = nl.add_net("fault_iso_dly" + std::to_string(i));
    nl.add_cell("u_fault_iso_dly" + std::to_string(i), buf, {prev}, n);
    prev = n;
  }
  for (std::size_t i : sel) nl.rewire_input(map.iso[i].cell, 1, prev);
  nl.check();
  return int(sel.size());
}

int inject_dropped_clamp(Netlist& nl, double fraction, Rng& rng) {
  const BoundaryMap map = extract_boundary(nl);
  const auto sel = pick_subset(map.iso.size(), fraction, rng);
  for (std::size_t i : sel) {
    const IsoSite& s = map.iso[i];
    // Snapshot before rewiring: rewire_input mutates the sink list.
    const std::vector<PinRef> sinks = nl.net(s.out).sinks;
    const std::vector<PortId> ports = nl.net(s.out).sink_ports;
    for (const PinRef& p : sinks) nl.rewire_input(p.cell, p.pin, s.data);
    for (PortId p : ports) nl.rewire_port(p, s.data);
  }
  if (!sel.empty()) nl.check();
  return int(sel.size());
}

double slow_rail_derate(const Netlist& nl, const SimConfig& cfg,
                        double t_low_s) {
  const RailParams rail = extract_rail_params(nl, cfg);
  const double tau = std::max(rail.tau_charge().v, 1e-15);
  return std::max(1.0, 3.0 * t_low_s / tau);
}

} // namespace scpg::verify
