// Seeded, scriptable fault injection for SCPG designs.
//
// Six fault classes cover the failure modes the paper's power-gating
// fabric must survive (one per hardware mechanism that can break the
// Fig 4 phase contract):
//
//   StuckIsolation   clamp-enable tied transparent (control stuck-at)
//   DelayedIsolation clamp-enable arrives after the rail has collapsed
//   DroppedClamp     always-on sinks bypass their clamp entirely
//   SlowRailRestore  degraded header Ron (aged / cold-corner Vt shift)
//   PrematureEdge    duty-cycle jitter: the clock rises during T_PGStart
//   SeuFlip          particle strikes on always-on state nodes
//
// The first three are structural netlist edits applied before the
// simulator is built; SlowRailRestore is a SimConfig knob; the last two
// are stimulus-level and scheduled by the campaign runner
// (src/verify/campaign.hpp).  All randomness flows through the caller's
// seeded Rng, so a campaign is exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace scpg::verify {

enum class FaultClass : std::uint8_t {
  StuckIsolation,
  DelayedIsolation,
  DroppedClamp,
  SlowRailRestore,
  PrematureEdge,
  SeuFlip,
};

inline constexpr int kNumFaultClasses = 6;

[[nodiscard]] std::string_view fault_class_name(FaultClass f);
/// Inverse of fault_class_name (CLI parsing); nullopt for unknown names.
[[nodiscard]] std::optional<FaultClass> fault_class_from_name(
    std::string_view name);

/// One requested fault injection.  `rate` and `magnitude` are
/// class-specific intensities; 0 selects a class default chosen to make
/// the fault unambiguously observable (see campaign.cpp):
///   StuckIsolation / DelayedIsolation  rate = fraction of clamps affected
///   DroppedClamp                       rate = fraction of clamps bypassed
///   SlowRailRestore                    magnitude = header Ron derate
///   PrematureEdge                      rate = fraction of cycles jittered
///   SeuFlip                            rate = flips per measured cycle
struct FaultSpec {
  FaultClass kind{};
  double rate{0.0};
  double magnitude{0.0};
};

// --- structural injectors (apply before building the Simulator) ----------
// Each returns the number of fault instances actually injected and leaves
// the netlist check()-clean.

/// Rewires the enable pin of a random `fraction` of isolation clamps to a
/// fresh always-on TIEHI: those clamps are permanently transparent.
int inject_stuck_isolation(Netlist& nl, double fraction, Rng& rng);

/// Splices a buffer chain (sized from the design's rail parameters to
/// exceed the corrupt time) into the enable of a random `fraction` of
/// clamps: isolation engages only after the rail has already collapsed.
int inject_delayed_isolation(Netlist& nl, const SimConfig& cfg,
                             double fraction, Rng& rng);

/// Rewires the always-on sinks of a random `fraction` of clamps back to
/// the raw gated net, bypassing the clamp.
int inject_dropped_clamp(Netlist& nl, double fraction, Rng& rng);

/// Header Ron derate that keeps the rail below the ready threshold for a
/// whole low phase of `t_low` seconds (the "guaranteed visible"
/// SlowRailRestore default: 3x the low phase over the nominal tau_charge).
[[nodiscard]] double slow_rail_derate(const Netlist& nl, const SimConfig& cfg,
                                      double t_low_s);

} // namespace scpg::verify
