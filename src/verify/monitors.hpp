// Runtime hazard monitors for sub-clock power gating.
//
// HazardMonitors is a passive SimObserver that checks the SCPG safety
// contract (paper Fig 3/4) on every simulated event:
//
//  * X containment — no unknown value may cross the isolation boundary
//    into always-on logic, and no always-on flop may capture an X;
//  * phase ordering — every clamp must be engaged before the rail crosses
//    the corrupt threshold (isolation precedes T_PGoff), no clamp may
//    release while the rail is collapsed, and no capture clock edge may
//    arrive during collapse (T_eval after T_PGStart);
//  * rail droop watchdog — the virtual rail must be at the ready fraction
//    at every capture edge;
//  * register timing — D inputs of always-on flops must be stable through
//    each flop's (corner-scaled) setup/hold window;
//  * state integrity — a flop output that changes without a matching
//    sample or reset is a spurious flip (SEU signature).
//
// Monitors arm only after `arm_after_cycles` rising clock edges so the
// time-zero X flush of an uninitialised design is not misreported.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "verify/boundary.hpp"
#include "verify/hazard.hpp"

namespace scpg::verify {

struct MonitorConfig {
  /// Rising clock edges to ignore before checking (startup X flush).
  int arm_after_cycles{4};
  bool x_containment{true};   ///< XCrossing / XCapture
  bool phase_order{true};     ///< IsolationLate / ReleasedEarly / SampleWhileCollapsed
  bool rail_watchdog{true};   ///< RailNotReadyAtSample
  bool timing_checks{true};   ///< Setup/HoldViolation
  bool state_integrity{true}; ///< SpuriousStateFlip
  /// Cap on stored hazard reports (counters keep counting past it).
  std::size_t log_cap{4096};
};

/// Attach with sim.attach_observer(&monitors); the monitors never mutate
/// the simulation.  Both `sim` and the monitors must outlive the run.
class HazardMonitors : public SimObserver {
public:
  HazardMonitors(const Simulator& sim, BoundaryMap map, MonitorConfig cfg = {});

  [[nodiscard]] const HazardLog& log() const { return log_; }
  [[nodiscard]] const BoundaryMap& boundary() const { return map_; }
  /// Rising clock edges seen so far.
  [[nodiscard]] long cycles_seen() const { return cycle_ + 1; }

  void on_net_change(SimTime t, NetId net, Logic oldv, Logic newv) override;
  void on_domain_phase(SimTime t, DomainPhase phase, double rail_v) override;
  void on_flop_drive(SimTime t, CellId flop, Logic value, SimTime due,
                     bool async_reset) override;

private:
  struct FlopCtx {
    CellId cell;
    NetId d, q;
    SimTime setup_fs{0}, hold_fs{0};
    Logic pending_v{Logic::X};
    SimTime pending_due{-1};
    bool pending{false};
    SimTime last_sample{-1};
  };

  void report(HazardKind k, NetId net, std::string detail);

  const Simulator* sim_;
  BoundaryMap map_;
  MonitorConfig cfg_;
  HazardLog log_;
  double vdd_;

  long cycle_{-1};
  bool armed_{false};
  DomainPhase phase_{DomainPhase::Ready};

  std::vector<std::uint8_t> watch_x_;   ///< net → X-containment watch set
  std::vector<std::uint8_t> iso_en_;    ///< net → is an iso enable net
  std::vector<SimTime> last_change_;    ///< net → last committed change
  std::vector<std::int32_t> q_owner_;   ///< net → flop index, or -1
  std::vector<std::vector<std::int32_t>> d_watch_; ///< net → flop indices
  std::vector<FlopCtx> flops_;
  std::vector<std::int32_t> flop_index_; ///< cell → flop index, or -1
};

} // namespace scpg::verify
