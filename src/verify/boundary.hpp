// Gated/always-on boundary extraction for runtime verification.
//
// The hazard monitors need to know exactly which nets the isolation
// clamps are responsible for, which always-on flip-flops hold
// architectural state, and which control nets sequence the domain.
// apply_scpg() exports this for freshly transformed netlists
// (ScpgInfo::isolation); extract_boundary() recovers the same map from
// any netlist — including one loaded from disk — by a structural scan, so
// `scpgc verify` works on saved SCPG designs too.
#pragma once

#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace scpg::verify {

/// One isolation clamp at the domain boundary.
struct IsoSite {
  CellId cell;   ///< the IsoLo/IsoHi instance
  NetId data;    ///< gated-domain input (may go X during collapse)
  NetId enable;  ///< active-low clamp control (NISO)
  NetId out;     ///< clamped always-on output (must never go X)
};

/// Everything the monitors watch, resolved to net/cell ids.
struct BoundaryMap {
  NetId clk;                        ///< clock net (invalid if port absent)
  std::vector<IsoSite> iso;         ///< all isolation cells
  std::vector<NetId> unprotected;   ///< gated→always-on nets with NO clamp
  std::vector<CellId> aon_flops;    ///< always-on flip-flops (Dff/DffR)
  std::size_t gated_cells{0};       ///< gated-domain population

  [[nodiscard]] bool has_gating() const { return gated_cells > 0; }
};

/// Scans `nl` for the SCPG boundary.  `clock_port` names the clock input
/// (as in ScpgOptions).  Never throws on an ungated netlist — the map
/// just comes back with has_gating() == false.
[[nodiscard]] BoundaryMap extract_boundary(const Netlist& nl,
                                           std::string_view clock_port =
                                               "clk");

} // namespace scpg::verify
