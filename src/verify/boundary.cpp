#include "verify/boundary.hpp"

namespace scpg::verify {

BoundaryMap extract_boundary(const Netlist& nl, std::string_view clock_port) {
  BoundaryMap map;
  const PortId clk = nl.find_port(clock_port);
  if (clk.valid()) map.clk = nl.port(clk).net;

  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const CellId id{ci};
    const Cell& c = nl.cell(id);
    if (c.domain == Domain::Gated) ++map.gated_cells;
    if (c.is_macro()) continue;
    const CellKind k = nl.kind_of(id);
    if (k == CellKind::IsoLo || k == CellKind::IsoHi) {
      map.iso.push_back({id, c.inputs[0], c.inputs[1], c.outputs[0]});
    } else if (kind_is_sequential(k) && c.domain != Domain::Gated) {
      map.aon_flops.push_back(id);
    }
  }

  // Unprotected crossings: nets driven inside the gated domain that feed
  // always-on logic (or a primary output) with no clamp in between.  Tie
  // cells are exempt — a gated tie is the rail sense, which reads the
  // collapsed rail as 0 rather than X by construction.
  for (std::uint32_t ni = 0; ni < nl.num_nets(); ++ni) {
    const NetId id{ni};
    const Net& n = nl.net(id);
    if (!n.driven_by_cell()) continue;
    if (nl.cell(n.driver_cell).domain != Domain::Gated) continue;
    const CellKind dk = nl.kind_of(n.driver_cell);
    if (dk == CellKind::TieHi || dk == CellKind::TieLo) continue;
    bool crosses = !n.sink_ports.empty();
    for (const PinRef& s : n.sinks) {
      if (crosses) break;
      if (nl.cell(s.cell).domain == Domain::Gated) continue;
      const CellKind sk =
          nl.cell(s.cell).is_macro() ? CellKind::Buf : nl.kind_of(s.cell);
      if (sk == CellKind::IsoLo || sk == CellKind::IsoHi) continue;
      crosses = true;
    }
    if (crosses) map.unprotected.push_back(id);
  }
  return map;
}

} // namespace scpg::verify
