#include "verify/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/obs.hpp"
#include "scpg/rail_model.hpp"
#include "util/error.hpp"

namespace scpg::verify {

namespace {
double rate_or(const FaultSpec& f, double dflt) {
  return f.rate > 0 ? f.rate : dflt;
}
} // namespace

CampaignResult run_campaign(Netlist nl, const CampaignOptions& opt) {
  SCPG_REQUIRE(opt.f.v > 0, "campaign needs a nonzero clock frequency");
  SCPG_REQUIRE(opt.warmup_cycles >= 1 && opt.cycles > 0,
               "campaign needs warmup >= 1 and cycles >= 1");

  obs::Scope campaign_scope("verify.campaign", "verify");

  CampaignResult res;
  SimConfig cfg = opt.sim;
  Rng rng(opt.seed);

  const SimTime T = to_fs(period(opt.f));
  const auto high_nom = SimTime(double(T) * opt.duty_high + 0.5);
  SCPG_REQUIRE(high_nom > 0 && high_nom < T, "duty_high must be in (0, 1)");
  const SimTime first_rise = T - high_nom;
  const double t_low_s = from_fs(T - high_nom).v;

  auto slot = [&res](FaultClass c) -> int& {
    return res.injected[std::size_t(c)];
  };

  // --- resolve and apply the requested faults -----------------------------
  bool premature = false;
  double premature_rate = 0.25;
  double seu_rate = 0;
  for (const FaultSpec& f : opt.faults) {
    switch (f.kind) {
      case FaultClass::StuckIsolation:
        slot(f.kind) += inject_stuck_isolation(nl, rate_or(f, 1.0), rng);
        break;
      case FaultClass::DelayedIsolation:
        slot(f.kind) += inject_delayed_isolation(nl, cfg, rate_or(f, 1.0),
                                                 rng);
        break;
      case FaultClass::DroppedClamp:
        slot(f.kind) += inject_dropped_clamp(nl, rate_or(f, 0.25), rng);
        break;
      case FaultClass::SlowRailRestore: {
        const double derate = f.magnitude > 0
                                  ? f.magnitude
                                  : slow_rail_derate(nl, cfg, t_low_s);
        cfg.header_ron_derate *= derate;
        slot(f.kind) += 1;
        break;
      }
      case FaultClass::PrematureEdge:
        premature = true;
        premature_rate = rate_or(f, 0.25);
        break;
      case FaultClass::SeuFlip:
        seu_rate = rate_or(f, 0.25);
        break;
    }
  }

  // Premature-edge compression: a jittered cycle's low phase shrinks to
  // half the rail's restore time, so the next capture edge lands
  // mid-T_PGStart.
  SimTime dlow = 0;
  if (premature) {
    const RailParams rail = extract_rail_params(nl, cfg);
    const Time t_restore =
        rail.t_ready_from(rail.v_after_off(from_fs(high_nom)));
    dlow = std::max<SimTime>(to_fs(t_restore) / 2, 1);
  }

  // --- boundary, simulator, monitors --------------------------------------
  const BoundaryMap map = extract_boundary(nl, opt.clock_port);
  SCPG_REQUIRE(map.clk.valid(),
               "clock port '" + opt.clock_port + "' not found");

  Simulator sim(nl, cfg);
  MonitorConfig mcfg = opt.monitors;
  mcfg.arm_after_cycles = opt.warmup_cycles;
  HazardMonitors mon(sim, map, mcfg);
  sim.attach_observer(&mon);
  sim.init_flops_to_zero();

  const PortId ov = nl.find_port(opt.override_port);
  if (ov.valid()) sim.drive_at(0, nl.port(ov).net, Logic::L1);

  // --- clock, with per-cycle duty jitter on premature-edge campaigns ------
  // Start the clock defined: flops only sample (and the monitors only
  // count) genuine 0 -> 1 edges, so an X -> 1 first rise would leave the
  // whole run's cycle numbering off by one.
  sim.drive_at(0, map.clk, Logic::L0);
  const int total = opt.warmup_cycles + opt.cycles;
  for (int k = 0; k <= total; ++k) {
    const SimTime rise = first_rise + SimTime(k) * T;
    sim.drive_at(rise, map.clk, Logic::L1);
    SimTime high = high_nom;
    if (premature && k >= opt.warmup_cycles && k < total &&
        rng.chance(premature_rate)) {
      high = T - dlow;
      ++slot(FaultClass::PrematureEdge);
    }
    sim.drive_at(rise + high, map.clk, Logic::L0);
  }

  // --- stimulus ------------------------------------------------------------
  std::vector<NetId> data_in, rst_in;
  for (const Port& p : nl.ports()) {
    if (p.dir != PortDir::In) continue;
    if (p.net == map.clk || (ov.valid() && p.net == nl.port(ov).net))
      continue;
    if (p.name.rfind("rst", 0) == 0)
      rst_in.push_back(p.net);
    else
      data_in.push_back(p.net);
  }
  if (!opt.stimulus) {
    // Active-low reset through the first cycle, then released.
    for (NetId r : rst_in) {
      sim.drive_at(0, r, Logic::L0);
      sim.drive_at(first_rise + T + T / 8, r, Logic::L1);
    }
    for (NetId d : data_in) sim.drive_at(0, d, Logic::L0);
  }
  long cyc = -1;
  sim.on_rising_edge(map.clk, [&] {
    ++cyc;
    if (opt.stimulus) {
      opt.stimulus(sim, int(cyc));
      return;
    }
    const SimTime t = sim.now() + T / 16;
    for (NetId d : data_in)
      sim.drive_at(t, d, rng.chance(0.5) ? Logic::L1 : Logic::L0);
  });

  // --- runtime faults: SEU flips on always-on state ------------------------
  if (seu_rate > 0 && !map.aon_flops.empty()) {
    const int flips = std::max(1, int(seu_rate * opt.cycles + 0.5));
    // Targets must be distinct (cycle, flop) pairs: two strikes on the
    // same flop at the same instant are one observable flip and would be
    // miscounted as an escape.
    std::vector<std::uint64_t> hit;
    for (int i = 0, tries = 0; i < flips && tries < 8 * flips; ++tries) {
      const int c = opt.warmup_cycles + int(rng.below(std::uint64_t(opt.cycles)));
      const std::size_t fsel = rng.below(map.aon_flops.size());
      const std::uint64_t key = (std::uint64_t(c) << 32) | std::uint64_t(fsel);
      if (std::find(hit.begin(), hit.end(), key) != hit.end()) continue;
      hit.push_back(key);
      ++i;
      const SimTime t = first_rise + SimTime(c) * T + high_nom / 2;
      const CellId f = map.aon_flops[fsel];
      const NetId q = nl.cell(f).outputs[0];
      sim.call_at(t, [&sim, q] {
        const Logic v = sim.value(q);
        if (is_known(v))
          sim.force_net(q, v == Logic::L1 ? Logic::L0 : Logic::L1);
      });
      ++slot(FaultClass::SeuFlip);
    }
  }

  {
    obs::Scope sim_scope("verify.simulate", "verify");
    sim.run_until(first_rise + SimTime(total) * T + T / 4);
  }

  res.hazards = mon.log();
  res.cycles_run = mon.cycles_seen();
  SCPG_OBS_COUNT("verify.campaigns", 1);
  SCPG_OBS_COUNT("verify.cycles", res.cycles_run);
  SCPG_OBS_COUNT("verify.hazards", res.hazards.total());
  SCPG_OBS_COUNT("verify.injected",
                 (std::accumulate(res.injected.begin(), res.injected.end(),
                                  std::uint64_t{0})));
  return res;
}

} // namespace scpg::verify
