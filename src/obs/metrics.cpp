#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace scpg::obs {

std::string_view kind_name(Kind k) {
  return k == Kind::Value ? "value" : "timing";
}

// --- Gauge ------------------------------------------------------------------

void Gauge::set(double v) {
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  SCPG_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be sorted ascending");
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[std::size_t(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Exact double accumulation via CAS; addition of exactly-representable
  // observations is associative, keeping value-kind sums jobs-invariant.
  std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      old, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + v),
      std::memory_order_relaxed))
    ;
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

// --- Registry ---------------------------------------------------------------

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name, Kind kind) {
  const std::lock_guard lock(m_);
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    SCPG_REQUIRE(it->second.counter != nullptr && it->second.kind == kind,
                 "metric '" + std::string(name) +
                     "' already registered with a different type/kind");
    return *it->second.counter;
  }
  Entry e;
  e.kind = kind;
  e.counter = std::make_unique<Counter>();
  return *metrics_.emplace(std::string(name), std::move(e))
              .first->second.counter;
}

Gauge& Registry::gauge(std::string_view name, Kind kind) {
  const std::lock_guard lock(m_);
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    SCPG_REQUIRE(it->second.gauge != nullptr && it->second.kind == kind,
                 "metric '" + std::string(name) +
                     "' already registered with a different type/kind");
    return *it->second.gauge;
  }
  Entry e;
  e.kind = kind;
  e.gauge = std::make_unique<Gauge>();
  return *metrics_.emplace(std::string(name), std::move(e))
              .first->second.gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds, Kind kind) {
  const std::lock_guard lock(m_);
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    SCPG_REQUIRE(it->second.histogram != nullptr && it->second.kind == kind,
                 "metric '" + std::string(name) +
                     "' already registered with a different type/kind");
    return *it->second.histogram;
  }
  Entry e;
  e.kind = kind;
  e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *metrics_.emplace(std::string(name), std::move(e))
              .first->second.histogram;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard lock(m_);
  MetricsSnapshot s;
  // std::map iteration is already name-ordered — the point of using one.
  for (const auto& [name, e] : metrics_) {
    if (e.counter) {
      s.counters.push_back({name, e.kind, e.counter->value()});
    } else if (e.gauge) {
      s.gauges.push_back({name, e.kind, e.gauge->value()});
    } else {
      s.histograms.push_back({name, e.kind, e.histogram->bounds(),
                              e.histogram->bucket_counts(),
                              e.histogram->count(), e.histogram->sum()});
    }
  }
  return s;
}

void Registry::reset_values() {
  const std::lock_guard lock(m_);
  for (auto& [name, e] : metrics_) {
    if (e.counter) e.counter->reset();
    else if (e.gauge) e.gauge->reset();
    else e.histogram->reset();
  }
}

void Registry::clear_registrations() {
  const std::lock_guard lock(m_);
  metrics_.clear();
}

// --- JSON -------------------------------------------------------------------

namespace {

void write_section(json::Writer& w, const MetricsSnapshot& s, Kind kind) {
  w.begin_object();
  for (const auto& c : s.counters)
    if (c.kind == kind)
      w.key(c.name)
          .begin_object(json::Writer::Style::Compact)
          .key("type")
          .value("counter")
          .key("value")
          .value(c.value)
          .end_object();
  for (const auto& g : s.gauges)
    if (g.kind == kind)
      w.key(g.name)
          .begin_object(json::Writer::Style::Compact)
          .key("type")
          .value("gauge")
          .key("value")
          .value(g.value)
          .end_object();
  for (const auto& h : s.histograms)
    if (h.kind == kind) {
      w.key(h.name).begin_object(json::Writer::Style::Compact);
      w.key("type").value("histogram");
      w.key("count").value(h.count);
      w.key("sum").value(h.sum);
      w.key("bounds").begin_array(json::Writer::Style::Compact);
      for (const double b : h.bounds) w.value(b);
      w.end_array();
      w.key("buckets").begin_array(json::Writer::Style::Compact);
      for (const std::uint64_t b : h.buckets) w.value(b);
      w.end_array();
      w.end_object();
    }
  w.end_object();
}

} // namespace

void MetricsSnapshot::write_payload(json::Writer& w) const {
  w.begin_object();
  w.key("values");
  write_section(w, *this, Kind::Value);
  w.key("timings");
  write_section(w, *this, Kind::Timing);
  w.end_object();
}

void write_metrics_json(std::ostream& os, std::string_view tool,
                        const MetricsSnapshot& snap) {
  json::Writer w(os);
  json::write_envelope_open(w, tool);
  w.key("payload");
  snap.write_payload(w);
  w.end_object();
  os << '\n';
}

} // namespace scpg::obs
