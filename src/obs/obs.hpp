// Observability front door: enable flags, the Scope RAII span, and the
// SCPG_OBS_* instrumentation macros.
//
// The layer has three states:
//
//  * Compiled out (CMake -DSCPG_OBS=OFF -> SCPG_OBS_DISABLED): kCompiledIn
//    is false, every macro folds to nothing, Scope is an empty object.
//    This build exists so tools/check.sh --obs can measure the honest
//    cost of the default build's disabled-mode branches.
//  * Compiled in, disabled (the default): each instrumentation site costs
//    one relaxed atomic load and a predictable branch; the registry and
//    trace collector are never touched, so a run with observability off
//    has zero observable side effects.
//  * Enabled (scpgc --trace / --metrics, or obs::configure in tests):
//    sites update the global metrics Registry and/or append trace events.
//
// Metrics and tracing enable independently: --metrics alone records no
// spans, --trace alone touches no counters.  Scope feeds both when both
// are on.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace scpg::obs {

#ifdef SCPG_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_trace_enabled;
} // namespace detail

[[nodiscard]] inline bool metrics_enabled() {
  if constexpr (!kCompiledIn) return false;
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

[[nodiscard]] inline bool trace_enabled() {
  if constexpr (!kCompiledIn) return false;
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

[[nodiscard]] inline bool enabled() {
  return metrics_enabled() || trace_enabled();
}

/// Turns collection on/off.  On the first enabling call this also names
/// the calling thread "main" and installs util::ThreadPool's thread-start
/// hook so every pool worker announces itself as "worker-k" — which is
/// what gives the exported trace one track per worker thread.
/// No-op (stays disabled) when compiled out.
void configure(bool enable_metrics, bool enable_trace);

/// Disables collection and wipes state: metric values reset to zero
/// (registrations survive) and all buffered trace events drop.
void reset();

/// Default duration-histogram bounds, in milliseconds.
[[nodiscard]] const std::vector<double>& default_ms_bounds();

/// RAII span.  While observability is enabled, construction stamps the
/// start time and destruction records:
///  * a Chrome trace "complete" event on the calling thread's track
///    (when tracing is on), and
///  * an observation in the timing histogram "<name>.ms" (when metrics
///    are on) — wall-clock, so it lands in the "timings" section and is
///    exempt from jobs-invariance.
/// When disabled the constructor is one branch and the destructor free.
/// `name` and `cat` must outlive the Scope (string literals in practice).
class Scope {
public:
  explicit Scope(std::string_view name, std::string_view cat = "scpg")
      : name_(name), cat_(cat), live_(enabled()) {
    if (live_) start_us_ = now_us();
  }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  /// Attaches a pre-rendered JSON object to the trace event (ignored
  /// when tracing is off).  Example: scope.args(R"({"point": 3})").
  void args(std::string args_json) { args_json_ = std::move(args_json); }

  ~Scope() {
    if (!live_) return;
    const double end = now_us();
    if (trace_enabled())
      record_complete(name_, cat_, start_us_, end - start_us_,
                      std::move(args_json_));
    if (metrics_enabled())
      Registry::global()
          .histogram(std::string(name_) + ".ms", default_ms_bounds(),
                     Kind::Timing)
          .observe((end - start_us_) / 1000.0);
  }

private:
  std::string_view name_;
  std::string_view cat_;
  std::string args_json_;
  double start_us_{0};
  bool live_;
};

} // namespace scpg::obs

// Instrumentation macros.  All of them evaluate their value arguments
// ONLY when the relevant collection is enabled — a disabled run never
// executes the expressions, never touches the registry, and (compiled
// out) contains no trace of the site at all.
#ifdef SCPG_OBS_DISABLED

#define SCPG_OBS_COUNT(name_, n_) \
  do {                            \
  } while (0)
#define SCPG_OBS_GAUGE(name_, v_) \
  do {                            \
  } while (0)
#define SCPG_OBS_TIMING_GAUGE(name_, v_) \
  do {                                   \
  } while (0)
#define SCPG_OBS_TIMING_HIST(name_, v_) \
  do {                                  \
  } while (0)

#else

/// Adds n_ to the jobs-invariant value counter name_.
#define SCPG_OBS_COUNT(name_, n_)                                      \
  do {                                                                 \
    if (::scpg::obs::metrics_enabled())                                \
      ::scpg::obs::Registry::global().counter(name_).add(              \
          static_cast<std::uint64_t>(n_));                             \
  } while (0)

/// Sets the value gauge name_ (single-writer; see metrics.hpp).
#define SCPG_OBS_GAUGE(name_, v_)                                      \
  do {                                                                 \
    if (::scpg::obs::metrics_enabled())                                \
      ::scpg::obs::Registry::global().gauge(name_).set(                \
          static_cast<double>(v_));                                    \
  } while (0)

/// Sets the wall-clock gauge name_ (reported under "timings").
#define SCPG_OBS_TIMING_GAUGE(name_, v_)                               \
  do {                                                                 \
    if (::scpg::obs::metrics_enabled())                                \
      ::scpg::obs::Registry::global()                                  \
          .gauge(name_, ::scpg::obs::Kind::Timing)                     \
          .set(static_cast<double>(v_));                               \
  } while (0)

/// Observes a wall-clock duration (ms) in the timing histogram name_.
#define SCPG_OBS_TIMING_HIST(name_, v_)                                \
  do {                                                                 \
    if (::scpg::obs::metrics_enabled())                                \
      ::scpg::obs::Registry::global()                                  \
          .histogram(name_, ::scpg::obs::default_ms_bounds(),          \
                     ::scpg::obs::Kind::Timing)                        \
          .observe(static_cast<double>(v_));                           \
  } while (0)

#endif
