// Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.
//
// One process-global Registry collects everything the instrumented layers
// (sim, engine, verify, fuzz) report.  Two invariants shape the design:
//
//  * Determinism split.  Every metric is either Kind::Value — a count of
//    WORK (cell evaluations, points run, cases fuzzed) that must be
//    byte-identical across `--jobs` — or Kind::Timing — a wall-clock
//    observation that legitimately differs run to run.  The JSON dump
//    separates them ("values" vs "timings" sections) so tools can diff
//    the deterministic half exactly; digest-visible results never read
//    timing metrics.  Value metrics stay jobs-invariant because all
//    updates are commutative integer/exact-double atomics — order of
//    arrival cannot change the total.
//
//  * Zero side effects when disabled.  Instrumentation sites go through
//    the SCPG_OBS_* macros (obs.hpp), which check the global enable flag
//    BEFORE touching the registry: a disabled run registers nothing,
//    counts nothing, and costs one predictable branch per site.
//
// Metric handles returned by the registry are valid for the process
// lifetime (clear() only resets their values, it does not destroy them),
// so hot paths may cache references.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace scpg::json {
class Writer;
}

namespace scpg::obs {

/// Determinism class of a metric (see file header).
enum class Kind : std::uint8_t { Value, Timing };

[[nodiscard]] std::string_view kind_name(Kind k);

/// Monotonic integer counter.
class Counter {
public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins double.  Value-kind gauges must only be set from one
/// thread (or with the same value) or the jobs-invariance guarantee is
/// forfeit — use them for end-of-run summaries, not per-worker state.
class Gauge {
public:
  void set(double v);
  [[nodiscard]] double value() const;
  void reset() { set(0.0); }

private:
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram: counts per bucket plus exact count/sum.
/// Bucket i counts observations <= bounds[i]; one implicit overflow
/// bucket catches the rest.  The sum uses compare-exchange double
/// accumulation — exact (and therefore order-independent) as long as
/// value-kind histograms observe integers or dyadic rationals.
class Histogram {
public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket counts, overflow bucket last (size() == bounds().size() + 1).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset();

private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
};

/// Point-in-time copy of every registered metric, in name order (stable
/// across runs regardless of registration interleaving).
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    Kind kind;
    std::uint64_t value;
  };
  struct GaugeRow {
    std::string name;
    Kind kind;
    double value;
  };
  struct HistogramRow {
    std::string name;
    Kind kind;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count;
    double sum;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  /// Payload object: {"values": {...}, "timings": {...}}, each section
  /// mapping metric name -> rendered metric.  Only the "values" section
  /// is jobs-invariant.
  void write_payload(json::Writer& w) const;
};

class Registry {
public:
  /// The process-global registry all macros and instrumented layers use.
  [[nodiscard]] static Registry& global();

  /// Finds or creates.  A name is permanently bound to its first
  /// (type, kind); a conflicting re-registration throws.
  Counter& counter(std::string_view name, Kind kind = Kind::Value);
  Gauge& gauge(std::string_view name, Kind kind = Kind::Value);
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       Kind kind = Kind::Value);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Resets every metric to zero (handles stay valid).  Tests use this
  /// between scenarios; clear_registrations() additionally forgets the
  /// metric definitions (existing handles dangle — tests only).
  void reset_values();
  void clear_registrations();

private:
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex m_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

/// Renders the full metrics envelope ({"schema_version", "tool",
/// "payload": {"values", "timings"}}) for --metrics dumps.
void write_metrics_json(std::ostream& os, std::string_view tool,
                        const MetricsSnapshot& snap);

} // namespace scpg::obs
