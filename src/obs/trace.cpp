#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>

#include "obs/obs.hpp"
#include "util/json.hpp"

namespace scpg::obs {

namespace {

/// One thread's event buffer.  Owned jointly by the thread (thread_local
/// shared_ptr) and the collector (registry vector), so events survive the
/// thread — pool workers die with their ThreadPool, the trace does not.
struct ThreadBuffer {
  std::mutex m;
  int tid{0};
  std::string name;
  std::vector<TraceEvent> events;
};

struct Collector {
  std::mutex m;
  std::vector<std::shared_ptr<ThreadBuffer>> threads;
  int next_tid{0};
};

Collector& collector() {
  static Collector c;
  return c;
}

ThreadBuffer& my_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Collector& c = collector();
    const std::lock_guard lock(c.m);
    b->tid = c.next_tid++;
    c.threads.push_back(b);
    return b;
  }();
  return *buf;
}

std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

} // namespace

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch())
      .count();
}

void set_thread_name(std::string name) {
  ThreadBuffer& b = my_buffer();
  const std::lock_guard lock(b.m);
  b.name = std::move(name);
}

void record_complete(std::string_view name, std::string_view cat,
                     double ts_us, double dur_us, std::string args_json) {
  if (!trace_enabled()) return;
  ThreadBuffer& b = my_buffer();
  const std::lock_guard lock(b.m);
  b.events.push_back(TraceEvent{std::string(name), std::string(cat),
                                std::move(args_json), ts_us, dur_us});
}

std::size_t trace_event_count() {
  Collector& c = collector();
  const std::lock_guard lock(c.m);
  std::size_t n = 0;
  for (const auto& t : c.threads) {
    const std::lock_guard tl(t->m);
    n += t->events.size();
  }
  return n;
}

void clear_trace() {
  Collector& c = collector();
  const std::lock_guard lock(c.m);
  for (const auto& t : c.threads) {
    const std::lock_guard tl(t->m);
    t->events.clear();
  }
}

void write_trace_json(std::ostream& os, std::string_view tool) {
  struct Row {
    TraceEvent e;
    int tid;
  };
  std::vector<Row> rows;
  std::vector<std::pair<int, std::string>> names;
  {
    Collector& c = collector();
    const std::lock_guard lock(c.m);
    for (const auto& t : c.threads) {
      const std::lock_guard tl(t->m);
      if (t->events.empty()) continue;
      names.emplace_back(
          t->tid, t->name.empty() ? "thread-" + std::to_string(t->tid)
                                  : t->name);
      for (const TraceEvent& e : t->events) rows.push_back({e, t->tid});
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) {
                     return a.e.ts_us < b.e.ts_us;
                   });

  json::Writer w(os);
  json::write_envelope_open(w, tool);
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const auto& [tid, name] : names) {
    w.begin_object(json::Writer::Style::Compact);
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(std::int64_t(1));
    w.key("tid").value(std::int64_t(tid));
    w.key("args").begin_object().key("name").value(name).end_object();
    w.end_object();
  }
  for (const Row& r : rows) {
    w.begin_object(json::Writer::Style::Compact);
    w.key("name").value(r.e.name);
    w.key("cat").value(r.e.cat);
    w.key("ph").value("X");
    w.key("ts").value(r.e.ts_us);
    w.key("dur").value(r.e.dur_us);
    w.key("pid").value(std::int64_t(1));
    w.key("tid").value(std::int64_t(r.tid));
    if (!r.e.args_json.empty()) w.key("args").raw(r.e.args_json);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

} // namespace scpg::obs
