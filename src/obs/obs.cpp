#include "obs/obs.hpp"

#include "util/parallel.hpp"

namespace scpg::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_trace_enabled{false};
} // namespace detail

namespace {

void worker_start_hook(std::size_t worker_index) {
  set_thread_name("worker-" + std::to_string(worker_index));
}

} // namespace

void configure(bool enable_metrics, bool enable_trace) {
  if constexpr (!kCompiledIn) return;
  if (enable_metrics || enable_trace) {
    static const bool installed = [] {
      set_thread_name("main");
      add_thread_start_hook(&worker_start_hook);
      (void)now_us(); // pin the trace epoch to the first enable
      return true;
    }();
    (void)installed;
  }
  detail::g_metrics_enabled.store(enable_metrics, std::memory_order_relaxed);
  detail::g_trace_enabled.store(enable_trace, std::memory_order_relaxed);
}

void reset() {
  detail::g_metrics_enabled.store(false, std::memory_order_relaxed);
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
  Registry::global().reset_values();
  clear_trace();
}

const std::vector<double>& default_ms_bounds() {
  static const std::vector<double> bounds{0.01, 0.05, 0.1,  0.5,  1.0,
                                          5.0,  10.0, 50.0, 100.0, 1000.0};
  return bounds;
}

} // namespace scpg::obs
