// Span-based tracing with Chrome trace_event JSON export.
//
// When tracing is enabled, instrumented code records "complete" events
// (name, category, start, duration) into a per-thread buffer; buffers
// register themselves with the global collector on first use, so the
// hot path takes no lock — one relaxed flag check plus an append to a
// thread-local vector.  Each OS thread becomes one track in the exported
// trace; util/parallel's worker threads announce themselves through
// set_thread_name(), so a `parallel_map` sweep renders as one "worker-k"
// track per pool worker with the per-point spans laid out on it.
//
// Export is the Chrome JSON Object Format: a top-level object carrying
// "traceEvents" plus the repo's envelope keys (schema_version / tool) —
// chrome://tracing and Perfetto ignore unknown top-level keys, so one
// file is both envelope-versioned and directly loadable.  Timestamps are
// microseconds since the collector was enabled (wall-clock: traces are
// never digest-visible).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace scpg::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  std::string args_json; ///< pre-rendered object ("" = none)
  double ts_us{0};
  double dur_us{0};
};

/// Names the calling thread's track in subsequent exports (cheap; safe to
/// call whether or not tracing is enabled — unnamed threads export as
/// "thread-<tid>").
void set_thread_name(std::string name);

/// Appends a complete event to the calling thread's buffer.  No-op when
/// tracing is disabled; `ts_us` is the span start in now_us() time.
void record_complete(std::string_view name, std::string_view cat,
                     double ts_us, double dur_us,
                     std::string args_json = {});

/// Microseconds since the trace epoch (the first enable_tracing() call).
[[nodiscard]] double now_us();

/// Number of buffered events across all threads (tests).
[[nodiscard]] std::size_t trace_event_count();

/// Drops all buffered events (thread registrations survive).
void clear_trace();

/// Writes the Chrome-loadable trace envelope: thread_name metadata events
/// first, then every buffered complete event.
void write_trace_json(std::ostream& os, std::string_view tool);

} // namespace scpg::obs
