// Static timing analysis.
//
// Computes, for one operating corner, the arrival time of every net under
// a load-dependent linear delay model:
//
//   cell delay = (intrinsic + drive_res * C_load) * delay_scale(corner)
//
// Launch points are primary inputs (time 0 — external inputs are assumed
// registered) and flip-flop Q outputs (clk-to-q).  Capture points are
// flip-flop D pins (requiring setup), clocked-macro data pins, and primary
// outputs.  The report carries the quantities the SCPG timing solver needs:
// the worst evaluation time T_eval (paper Fig 1), Fmax, hold margins and
// the critical path.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "tech/tech_model.hpp"

namespace scpg {

/// One step of a traced timing path.
struct PathStep {
  CellId cell;   ///< invalid for the launch point
  NetId net;     ///< net whose value this step produces
  Time arrival;  ///< accumulated arrival at `net`
};

struct StaReport {
  Corner corner;

  /// Worst data arrival over all capture points, measured from the launch
  /// clock edge (includes launch clk-to-q).  This is the paper's T_eval.
  Time t_eval{};

  /// Setup time of the worst endpoint's capturing flop (0 for outputs).
  Time endpoint_setup{};

  /// Maximum clock frequency: 1 / (t_eval + endpoint_setup).
  Frequency fmax{};

  /// Smallest data arrival at any flop D pin (for the hold check) and the
  /// largest hold requirement among capturing flops.
  Time min_arrival{};
  Time worst_hold{};
  [[nodiscard]] bool hold_met() const { return min_arrival >= worst_hold; }

  /// Critical path, launch to capture.
  std::vector<PathStep> critical_path;

  /// Arrival per net (Time{-1} for nets never reached, e.g. clock nets).
  std::vector<Time> arrival;

  [[nodiscard]] Time arrival_of(NetId n) const { return arrival[n.v]; }

  /// Setup slack at a given clock frequency (negative = violation).
  [[nodiscard]] Time setup_slack(Frequency clk) const {
    return period(clk) - t_eval - endpoint_setup;
  }
};

/// Runs STA at a corner.  The netlist must pass check().
[[nodiscard]] StaReport run_sta(const Netlist& nl, Corner corner);

/// Formats the critical path for reports.
[[nodiscard]] std::string format_path(const Netlist& nl,
                                      const StaReport& r);

} // namespace scpg
