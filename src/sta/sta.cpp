#include "sta/sta.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace scpg {

namespace {

constexpr double kUnreached = -1.0;

/// Is input pin `pin` of `cell` a clock pin (excluded from data paths)?
bool is_clock_pin(const Netlist& nl, CellId cell, int pin) {
  const Cell& c = nl.cell(cell);
  if (c.is_macro()) return nl.macro_spec(c.macro).has_clock && pin == 0;
  const CellKind k = nl.kind_of(cell);
  if (k == CellKind::Dff || k == CellKind::DffR) return pin == 1;
  return false;
}

} // namespace

StaReport run_sta(const Netlist& nl, Corner corner) {
  const Library& lib = nl.lib();
  const double dscale = lib.tech().delay_scale(corner);

  StaReport rep;
  rep.corner = corner;
  rep.arrival.assign(nl.num_nets(), Time{kUnreached});
  std::vector<Time> min_arrival(nl.num_nets(), Time{kUnreached});
  // Back-pointers for critical-path tracing: for each net, the driving
  // cell's worst input net.
  std::vector<NetId> worst_fanin(nl.num_nets());

  // Launch points.  For max analysis primary inputs arrive at 0 (external
  // logic is assumed registered, so its clk-to-q is outside our budget);
  // for min (hold) analysis they are assumed launched like any register,
  // i.e. no earlier than the fastest clk-to-q in the design.
  Time worst_clk_to_q{};
  Time min_clk_to_q{std::numeric_limits<double>::max()};
  for (CellId f : nl.flops()) {
    const CellSpec& s = nl.spec_of(f);
    const Time cq = s.clk_to_q * dscale;
    worst_clk_to_q = std::max(worst_clk_to_q, cq);
    min_clk_to_q = std::min(min_clk_to_q, cq);
    const NetId q = nl.cell(f).outputs[0];
    rep.arrival[q.v] = cq;
    min_arrival[q.v] = cq;
  }
  if (nl.flops().empty()) min_clk_to_q = Time{0.0};
  for (const Port& p : nl.ports())
    if (p.dir == PortDir::In && rep.arrival[p.net.v].v == kUnreached) {
      rep.arrival[p.net.v] = Time{0.0};
      min_arrival[p.net.v] = min_clk_to_q;
    }

  // Propagate through combinational nodes in topological order.
  for (CellId id : nl.topo_order()) {
    const Cell& c = nl.cell(id);
    Time in_max{kUnreached};
    Time in_min{std::numeric_limits<double>::max()};
    NetId argmax;
    bool any = false;
    for (std::size_t pin = 0; pin < c.inputs.size(); ++pin) {
      if (is_clock_pin(nl, id, int(pin))) continue;
      const Time a = rep.arrival[c.inputs[pin].v];
      if (a.v == kUnreached) continue; // e.g. fed by a clock net
      any = true;
      if (a > in_max) {
        in_max = a;
        argmax = c.inputs[pin];
      }
      in_min = std::min(in_min, min_arrival[c.inputs[pin].v]);
    }
    if (!any) {
      in_max = Time{0.0};
      in_min = Time{0.0};
    }

    if (c.is_macro()) {
      const Time d = nl.macro_spec(c.macro).access_delay * dscale;
      for (NetId out : c.outputs) {
        rep.arrival[out.v] = in_max + d;
        min_arrival[out.v] = in_min + d;
        worst_fanin[out.v] = argmax;
      }
      continue;
    }
    const CellSpec& s = nl.spec_of(id);
    const NetId out = c.outputs[0];
    const Time d =
        (s.intrinsic_delay + Time{(s.drive_res * nl.net_load(out)).v}) *
        dscale;
    rep.arrival[out.v] = in_max + d;
    min_arrival[out.v] = in_min + d;
    worst_fanin[out.v] = argmax;
  }

  // Capture points.
  Time worst{kUnreached};
  Time worst_setup{};
  NetId worst_net;
  rep.min_arrival = Time{std::numeric_limits<double>::max()};
  bool any_endpoint = false;

  auto consider = [&](NetId n, Time setup, Time hold) {
    const Time a = rep.arrival[n.v];
    if (a.v == kUnreached) return;
    any_endpoint = true;
    if (a + setup > worst + worst_setup) {
      worst = a;
      worst_setup = setup;
      worst_net = n;
    }
    if (min_arrival[n.v] < rep.min_arrival)
      rep.min_arrival = min_arrival[n.v];
    rep.worst_hold = std::max(rep.worst_hold, hold);
  };

  for (CellId f : nl.flops()) {
    const CellSpec& s = nl.spec_of(f);
    consider(nl.cell(f).inputs[0], s.setup * dscale, s.hold * dscale);
  }
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const Cell& c = nl.cell(CellId{ci});
    if (!c.is_macro() || !nl.macro_spec(c.macro).has_clock) continue;
    // Clocked macro data pins behave like flop D pins with zero setup.
    for (std::size_t pin = 1; pin < c.inputs.size(); ++pin)
      consider(c.inputs[pin], Time{0.0}, Time{0.0});
  }
  for (const Port& p : nl.ports())
    if (p.dir == PortDir::Out) consider(p.net, Time{0.0}, Time{0.0});

  SCPG_REQUIRE(any_endpoint, "design has no timing endpoints");
  rep.t_eval = worst;
  rep.endpoint_setup = worst_setup;
  rep.fmax = frequency(rep.t_eval + rep.endpoint_setup);

  // Trace the critical path back from the worst endpoint.
  NetId n = worst_net;
  while (n.valid()) {
    const Net& net = nl.net(n);
    PathStep step;
    step.net = n;
    step.arrival = rep.arrival[n.v];
    step.cell = net.driven_by_cell() ? net.driver_cell : CellId{};
    rep.critical_path.push_back(step);
    if (!net.driven_by_cell()) break;
    const CellKind k = nl.kind_of(net.driver_cell);
    if (kind_is_sequential(k)) break; // reached the launching flop
    n = worst_fanin[n.v];
  }
  std::reverse(rep.critical_path.begin(), rep.critical_path.end());
  return rep;
}

std::string format_path(const Netlist& nl, const StaReport& r) {
  std::ostringstream os;
  os << "critical path (" << in_ns(r.t_eval) << " ns + setup "
     << in_ns(r.endpoint_setup) << " ns, fmax " << in_MHz(r.fmax)
     << " MHz):\n";
  for (const PathStep& s : r.critical_path) {
    os << "  ";
    if (s.cell.valid())
      os << nl.cell(s.cell).name << " ("
         << (nl.cell(s.cell).is_macro()
                 ? nl.macro_spec(nl.cell(s.cell).macro).type_name
                 : nl.spec_of(s.cell).name)
         << ")";
    else
      os << "<input>";
    os << " -> " << nl.net(s.net).name << " @ " << in_ns(s.arrival)
       << " ns\n";
  }
  return os.str();
}

} // namespace scpg
