#include "engine/cache.hpp"

#include "obs/obs.hpp"

namespace scpg::engine {

ResultCache& ResultCache::global() {
  static ResultCache cache;
  return cache;
}

std::optional<Measurement> ResultCache::find(const CacheKey& key) {
  const std::lock_guard lock(m_);
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.m;
}

void ResultCache::store(const CacheKey& key, const Measurement& m) {
  const std::lock_guard lock(m_);
  if (capacity_ == 0) return;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Equal keys mean equal content; keep the existing entry, refresh
    // its recency.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{m, lru_.begin()});
  evict_to_capacity_locked();
  publish_gauges_locked();
}

void ResultCache::clear() {
  const std::lock_guard lock(m_);
  map_.clear();
  lru_.clear();
  evictions_ = 0;
  publish_gauges_locked();
}

std::size_t ResultCache::size() const {
  const std::lock_guard lock(m_);
  return map_.size();
}

std::uint64_t ResultCache::evictions() const {
  const std::lock_guard lock(m_);
  return evictions_;
}

void ResultCache::set_capacity(std::size_t cap) {
  const std::lock_guard lock(m_);
  capacity_ = cap;
  evict_to_capacity_locked();
  publish_gauges_locked();
}

std::size_t ResultCache::capacity() const {
  const std::lock_guard lock(m_);
  return capacity_;
}

void ResultCache::evict_to_capacity_locked() {
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

void ResultCache::publish_gauges_locked() {
  SCPG_OBS_GAUGE("engine.cache.entries", map_.size());
  SCPG_OBS_GAUGE("engine.cache.evictions", evictions_);
}

} // namespace scpg::engine
