#include "engine/cache.hpp"

namespace scpg::engine {

ResultCache& ResultCache::global() {
  static ResultCache cache;
  return cache;
}

std::optional<Measurement> ResultCache::find(const CacheKey& key) const {
  const std::lock_guard lock(m_);
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void ResultCache::store(const CacheKey& key, const Measurement& m) {
  const std::lock_guard lock(m_);
  map_.emplace(key, m);
}

void ResultCache::clear() {
  const std::lock_guard lock(m_);
  map_.clear();
}

std::size_t ResultCache::size() const {
  const std::lock_guard lock(m_);
  return map_.size();
}

} // namespace scpg::engine
