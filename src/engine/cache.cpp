#include "engine/cache.hpp"

#include "obs/obs.hpp"

namespace scpg::engine {

ResultCache& ResultCache::global() {
  static ResultCache cache;
  return cache;
}

std::optional<Measurement> ResultCache::find(const CacheKey& key) {
  const std::lock_guard lock(m_);
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.m;
}

void ResultCache::store(const CacheKey& key, const Measurement& m) {
  StoreHook hook;
  {
    const std::lock_guard lock(m_);
    if (!insert_locked(key, m)) return;
    hook = store_hook_;
  }
  // Fired outside m_: a persistence hook takes its own lock and may call
  // back into this cache (entries_mru on rewrite), so firing it under m_
  // would invert the lock order against that path.
  if (hook) hook(key, m);
}

void ResultCache::preload(const CacheKey& key, const Measurement& m) {
  const std::lock_guard lock(m_);
  insert_locked(key, m);
}

bool ResultCache::insert_locked(const CacheKey& key, const Measurement& m) {
  if (capacity_ == 0) return false;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Equal keys mean equal content; keep the existing entry, refresh
    // its recency.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return false;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{m, lru_.begin()});
  evict_to_capacity_locked();
  publish_gauges_locked();
  return true;
}

void ResultCache::set_store_hook(StoreHook hook) {
  const std::lock_guard lock(m_);
  store_hook_ = std::move(hook);
}

std::vector<std::pair<CacheKey, Measurement>> ResultCache::entries_mru()
    const {
  const std::lock_guard lock(m_);
  std::vector<std::pair<CacheKey, Measurement>> out;
  out.reserve(map_.size());
  for (const CacheKey& key : lru_) out.emplace_back(key, map_.at(key).m);
  return out;
}

void ResultCache::clear() {
  const std::lock_guard lock(m_);
  map_.clear();
  lru_.clear();
  evictions_ = 0;
  publish_gauges_locked();
}

std::size_t ResultCache::size() const {
  const std::lock_guard lock(m_);
  return map_.size();
}

std::uint64_t ResultCache::evictions() const {
  const std::lock_guard lock(m_);
  return evictions_;
}

void ResultCache::set_capacity(std::size_t cap) {
  const std::lock_guard lock(m_);
  capacity_ = cap;
  evict_to_capacity_locked();
  publish_gauges_locked();
}

std::size_t ResultCache::capacity() const {
  const std::lock_guard lock(m_);
  return capacity_;
}

void ResultCache::evict_to_capacity_locked() {
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

void ResultCache::publish_gauges_locked() {
  SCPG_OBS_GAUGE(gauge_ns_ + ".entries", map_.size());
  SCPG_OBS_GAUGE(gauge_ns_ + ".evictions", evictions_);
}

} // namespace scpg::engine
