// Parallel sweep engine: SweepSpec -> Experiment -> SweepResult.
//
// Every measurement campaign in the repo — the paper's frequency tables,
// figure sweeps, corner grids, Monte-Carlo runs — is a grid of
// *independent* operating points simulated on the same design(s).  This
// engine executes any such grid concurrently:
//
//   * one immutable Netlist/Library shared read-only by all workers;
//   * one private Simulator per point (simulators are stateful and
//     non-copyable — they are never shared);
//   * a deterministic per-point RNG stream derived from the sweep seed
//     and the point's configuration digest (Rng::stream), so stimulus is
//     a pure function of the point, never of execution order;
//   * index-ordered results (util/parallel.hpp), so a parallel run is
//     bit-identical to `jobs(1)`;
//   * a process-global result cache keyed by (netlist structural digest,
//     point configuration digest) — see engine/cache.hpp;
//   * an optional progress/ETA callback for long campaigns.
//
// Layering: the engine depends on sim/netlist/util only.  SCPG-aware
// sweep construction (duty_for, feasibility) lives in the callers
// (bench/, scpg/), which build specs from model queries.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/backend.hpp"
#include "sim/simulator.hpp"
#include "sim/stimulus.hpp"
#include "util/rng.hpp"

namespace scpg::engine {

class ResultCache;

/// What one simulation job measured.
struct Measurement {
  PowerTally tally;   ///< energy buckets over the measurement window
  int cycles{0};
  Power avg_power{};
  Energy energy_per_cycle{};
};

/// Per-cycle stimulus: runs right after every rising clock edge with the
/// 0-based cycle index and the point's private RNG stream.  Use the
/// provided Rng (not a captured one) so stimulus stays deterministic and
/// race-free when points run concurrently.  A raw closure pins the sweep
/// to the event backend — prefer the declarative sim::StimulusSpec
/// overloads, which every backend can execute.
using Stimulus = sim::StimulusFn;

/// Extra setup before time 0 (e.g. drive a reset, preload memories).
using Setup = sim::SetupFn;

/// One fully resolved simulation job of a sweep.
struct OperatingPoint {
  std::size_t design{0};      ///< index into the spec's designs
  Frequency f{Frequency{1e6}};
  double duty_high{0.5};
  Corner corner{Voltage{0.6}, 25.0};
  bool override_gating{false};///< drive override_n low (gating disabled)
  std::uint64_t seed{0};      ///< sweep seed for this point's RNG stream
  std::string tag;            ///< caller label, carried into the result
};

struct PointResult : Measurement {
  OperatingPoint point;
  bool cache_hit{false};
  /// Which engine measured (or would have measured) this row: the static
  /// per-row resolution of the spec's requested backend.  Set on cache
  /// hits too — the choice is a pure function of the row's content.
  sim::Backend backend{sim::Backend::Event};
};

struct Progress {
  std::size_t done{0};
  std::size_t total{0};
  std::size_t cache_hits{0};
  double elapsed_s{0};
  double eta_s{0}; ///< linear extrapolation; 0 when done == 0
};

/// Invoked after every completed point.  Calls are serialised by the
/// engine but may come from any worker thread, and completion order is
/// not deterministic — do not derive results from this hook.
using ProgressFn = std::function<void(const Progress&)>;

/// Context handed to the design gate with each design under validation.
struct GateContext {
  std::string_view label;      ///< the spec's design label
  std::string_view clock_port; ///< the spec's clock port name
};

/// Design gate: Experiment::run() invokes it once per distinct design
/// before any point is simulated; throw to reject the whole sweep.  The
/// default gate is Netlist::check().  Higher layers may install a stricter
/// one — src/lint registers the full SCPG linter via
/// lint::install_engine_gate() (the engine stays below the analysis
/// layers, so the linter is injected, not linked).  Passing an empty
/// function restores the default.  Thread-safe.
using DesignGate = std::function<void(const Netlist&, const GateContext&)>;
void set_design_gate(DesignGate gate);

/// The currently installed gate (the default check() gate if none set).
[[nodiscard]] DesignGate design_gate();

/// Typed result table: one row per operating point, in the deterministic
/// row order of SweepSpec (grid order, then explicit points).
class SweepResult {
public:
  SweepResult() = default;
  explicit SweepResult(std::vector<PointResult> rows)
      : rows_(std::move(rows)) {}

  [[nodiscard]] std::span<const PointResult> rows() const { return rows_; }
  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] bool empty() const { return rows_.empty(); }
  [[nodiscard]] const PointResult& operator[](std::size_t i) const {
    return rows_[i];
  }
  [[nodiscard]] auto begin() const { return rows_.begin(); }
  [[nodiscard]] auto end() const { return rows_.end(); }

  /// First row whose tag matches; nullptr if absent.
  [[nodiscard]] const PointResult* find(std::string_view tag) const;
  /// First row whose tag matches; throws PreconditionError if absent.
  [[nodiscard]] const PointResult& at_tag(std::string_view tag) const;

  [[nodiscard]] std::size_t cache_hits() const;

private:
  std::vector<PointResult> rows_;
};

/// Builder describing a sweep: designs, point grid, shared fixture
/// (stimulus/setup/cycle counts) and execution policy (jobs, caching,
/// progress).  Grid axes cross-multiply in nesting order
/// designs > frequencies > duties > corners > seeds > overrides; explicit
/// point() entries are appended after the grid.  Unset axes default to a
/// single element (duty 0.5, corner = base_sim's, seed 0, override off),
/// so a spec with one design and one frequency is a single measurement.
class SweepSpec {
public:
  // --- designs and grid axes ----------------------------------------------

  /// Adds a design.  The netlist must outlive the experiment and is
  /// shared read-only across workers — do not mutate it while running.
  SweepSpec& design(const Netlist& nl, std::string label = {});

  SweepSpec& frequencies(std::vector<Frequency> fs);
  SweepSpec& frequency(Frequency f) { return frequencies({f}); }
  SweepSpec& duties(std::vector<double> ds);
  SweepSpec& duty(double d) { return duties({d}); }
  SweepSpec& corners(std::vector<Corner> cs);
  SweepSpec& corner(Corner c) { return corners({c}); }
  SweepSpec& overrides(std::vector<bool> ovs);
  SweepSpec& override_gating(bool ov) { return overrides({ov}); }
  SweepSpec& seeds(std::vector<std::uint64_t> ss);
  SweepSpec& seed(std::uint64_t s) { return seeds({s}); }

  /// Appends one explicit point after the grid (for rows that are not a
  /// cross product, e.g. gated-at-dmax where the duty depends on f).
  /// point.design must index a design added via design().
  SweepSpec& point(OperatingPoint p);

  // --- shared fixture ------------------------------------------------------

  /// Base SimConfig; each point overrides its `corner` field.
  SweepSpec& base_sim(SimConfig cfg);
  SweepSpec& cycles(int measured, int warmup = 4);
  SweepSpec& clock_port(std::string name);
  SweepSpec& override_port(std::string name);

  /// Per-cycle stimulus shared by all points.  `cache_key` names the
  /// stimulus behaviour for the result cache; an empty key marks the
  /// closure as opaque and disables caching for this sweep (two sweeps
  /// with the same key string MUST apply identical stimulus).  A raw
  /// closure is opaque to non-event backends: the compiled backend
  /// refuses it (Auto falls back to event).
  SweepSpec& stimulus(Stimulus fn, std::string cache_key = {});
  SweepSpec& setup(Setup fn, std::string cache_key = {});

  /// Declarative fixture every backend can execute; the spec's key() is
  /// the cache key (declarative specs always carry one).
  SweepSpec& stimulus(sim::StimulusSpec spec);
  SweepSpec& setup(sim::SetupSpec spec);

  /// Simulation backend for every point (default Event).  Compiled
  /// throws at run() for points it cannot model; Auto resolves per row
  /// to compiled when eligible, event otherwise.
  SweepSpec& backend(sim::Backend b);
  [[nodiscard]] sim::Backend backend() const { return backend_; }

  // --- execution policy ----------------------------------------------------

  /// Worker count; <= 0 means default_jobs() (SCPG_JOBS env or hardware).
  SweepSpec& jobs(int n);
  SweepSpec& use_cache(bool on);
  /// Cache instance to consult/populate; nullptr (the default) selects
  /// ResultCache::global().  The instance must outlive the experiment.
  /// Long-running services pass their own so daemon hit accounting never
  /// aliases other work in the process.
  SweepSpec& cache(ResultCache* c);
  SweepSpec& on_progress(ProgressFn fn);

  // --- inspection ----------------------------------------------------------

  /// The fully expanded point list, in result-row order.
  [[nodiscard]] std::vector<OperatingPoint> expand() const;
  [[nodiscard]] const SimConfig& base_sim() const { return base_sim_; }
  [[nodiscard]] std::size_t num_designs() const { return designs_.size(); }
  [[nodiscard]] const Netlist& design_at(std::size_t i) const {
    return *designs_[i];
  }
  [[nodiscard]] std::string_view design_label(std::size_t i) const {
    return design_labels_[i];
  }

private:
  friend class Experiment;

  std::vector<const Netlist*> designs_;
  std::vector<std::string> design_labels_;
  std::vector<Frequency> fs_;
  std::vector<double> duties_;
  std::vector<Corner> corners_;
  std::vector<bool> overrides_;
  std::vector<std::uint64_t> seeds_;
  std::vector<OperatingPoint> extra_;

  SimConfig base_sim_{};
  int cycles_{24};
  int warmup_{4};
  std::string clock_port_{"clk"};
  std::string override_port_{"override_n"};
  sim::StimulusSpec stimulus_;
  sim::SetupSpec setup_;
  sim::Backend backend_{sim::Backend::Event};

  int jobs_{0};
  bool use_cache_{true};
  ResultCache* cache_{nullptr};
  ProgressFn progress_;
};

/// Executes a SweepSpec.  run() may be called repeatedly (a second run
/// hits the cache when caching is enabled).
class Experiment {
public:
  explicit Experiment(SweepSpec spec);

  /// Runs every point and returns the typed table.  Row i of the result
  /// corresponds to spec.expand()[i] regardless of job count — parallel
  /// output is bit-identical to serial.
  [[nodiscard]] SweepResult run() const;

  [[nodiscard]] const SweepSpec& spec() const { return spec_; }

  /// The expanded row list, validated exactly as run() validates it: the
  /// design gate has passed every design, digests are computed, and the
  /// tag-aliasing check has run.  Computed once, lazily.
  [[nodiscard]] const std::vector<OperatingPoint>& points() const;

  /// points()[row]'s configuration digest.
  [[nodiscard]] std::uint64_t row_digest(std::size_t row) const;

  /// Runs a single row of points() through the cache and returns exactly
  /// the PointResult that row of run() would hold.  Measurements are a
  /// pure function of the row's content (the RNG stream is keyed by the
  /// row digest, never by execution order), so rows may be computed in
  /// any process, in any order, and reassembled bit-identically — this
  /// is the primitive the multi-process campaign executor (src/campaign)
  /// shards across workers.
  [[nodiscard]] PointResult run_row(std::size_t row) const;

  /// Content digest of one point's full configuration (netlist digest +
  /// operating point + shared fixture).  This keys both the result cache
  /// and the point's RNG stream; exposed for tests.
  [[nodiscard]] std::uint64_t point_digest(const OperatingPoint& pt) const;

private:
  struct Prepared {
    std::vector<OperatingPoint> pts;
    std::vector<std::uint64_t> digests;
    bool cacheable{false};
  };

  [[nodiscard]] const Prepared& prepare() const;
  /// The spec-selected cache instance (the global one by default).
  [[nodiscard]] ResultCache& result_cache() const;
  [[nodiscard]] PointResult execute_row(const Prepared& prep,
                                        std::size_t row) const;
  /// Runs a group of compiled-resolved rows that differ only in
  /// (seed, digest) as one bit-parallel measure_group call, writing each
  /// row's PointResult into `results` at its row index.
  void execute_unit(const Prepared& prep, const std::vector<std::size_t>& rows,
                    std::vector<PointResult>& results) const;
  [[nodiscard]] sim::MeasureRequest make_request(const OperatingPoint& pt,
                                                 std::uint64_t digest) const;
  [[nodiscard]] Measurement measure_point(const sim::MeasureRequest& rq,
                                          sim::Backend chosen) const;
  [[nodiscard]] Measurement finish_measurement(const PowerTally& tally) const;

  SweepSpec spec_;
  std::vector<std::uint64_t> design_digests_;
  mutable std::once_flag prep_once_;
  mutable std::unique_ptr<const Prepared> prep_;
};

} // namespace scpg::engine
