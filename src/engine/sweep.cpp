#include "engine/sweep.hpp"

#include <chrono>
#include <map>
#include <mutex>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "engine/cache.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace scpg::engine {

// --- SweepResult ------------------------------------------------------------

const PointResult* SweepResult::find(std::string_view tag) const {
  for (const auto& r : rows_)
    if (r.point.tag == tag) return &r;
  return nullptr;
}

const PointResult& SweepResult::at_tag(std::string_view tag) const {
  const PointResult* r = find(tag);
  SCPG_REQUIRE(r != nullptr,
               "no sweep row tagged \"" + std::string(tag) + "\"");
  return *r;
}

std::size_t SweepResult::cache_hits() const {
  std::size_t n = 0;
  for (const auto& r : rows_) n += r.cache_hit ? 1 : 0;
  return n;
}

// --- SweepSpec --------------------------------------------------------------

SweepSpec& SweepSpec::design(const Netlist& nl, std::string label) {
  designs_.push_back(&nl);
  design_labels_.push_back(label.empty() ? nl.name() : std::move(label));
  return *this;
}

SweepSpec& SweepSpec::frequencies(std::vector<Frequency> fs) {
  fs_ = std::move(fs);
  return *this;
}

SweepSpec& SweepSpec::duties(std::vector<double> ds) {
  duties_ = std::move(ds);
  return *this;
}

SweepSpec& SweepSpec::corners(std::vector<Corner> cs) {
  corners_ = std::move(cs);
  return *this;
}

SweepSpec& SweepSpec::overrides(std::vector<bool> ovs) {
  overrides_ = std::move(ovs);
  return *this;
}

SweepSpec& SweepSpec::seeds(std::vector<std::uint64_t> ss) {
  seeds_ = std::move(ss);
  return *this;
}

SweepSpec& SweepSpec::point(OperatingPoint p) {
  extra_.push_back(std::move(p));
  return *this;
}

SweepSpec& SweepSpec::base_sim(SimConfig cfg) {
  base_sim_ = cfg;
  return *this;
}

SweepSpec& SweepSpec::cycles(int measured, int warmup) {
  cycles_ = measured;
  warmup_ = warmup;
  return *this;
}

SweepSpec& SweepSpec::clock_port(std::string name) {
  clock_port_ = std::move(name);
  return *this;
}

SweepSpec& SweepSpec::override_port(std::string name) {
  override_port_ = std::move(name);
  return *this;
}

SweepSpec& SweepSpec::stimulus(Stimulus fn, std::string cache_key) {
  // A null closure clears the stimulus, as it always did.
  stimulus_ = fn ? sim::StimulusSpec::closure(std::move(fn),
                                              std::move(cache_key))
                 : sim::StimulusSpec{};
  return *this;
}

SweepSpec& SweepSpec::setup(Setup fn, std::string cache_key) {
  setup_ = fn ? sim::SetupSpec::closure(std::move(fn), std::move(cache_key))
              : sim::SetupSpec{};
  return *this;
}

SweepSpec& SweepSpec::stimulus(sim::StimulusSpec spec) {
  stimulus_ = std::move(spec);
  return *this;
}

SweepSpec& SweepSpec::setup(sim::SetupSpec spec) {
  setup_ = std::move(spec);
  return *this;
}

SweepSpec& SweepSpec::backend(sim::Backend b) {
  backend_ = b;
  return *this;
}

SweepSpec& SweepSpec::jobs(int n) {
  jobs_ = n;
  return *this;
}

SweepSpec& SweepSpec::use_cache(bool on) {
  use_cache_ = on;
  return *this;
}

SweepSpec& SweepSpec::cache(ResultCache* c) {
  cache_ = c;
  return *this;
}

SweepSpec& SweepSpec::on_progress(ProgressFn fn) {
  progress_ = std::move(fn);
  return *this;
}

std::vector<OperatingPoint> SweepSpec::expand() const {
  // Unset axes contribute one default element; an unset frequency axis
  // contributes nothing (the grid is empty, only explicit points run).
  const std::vector<double> duties = duties_.empty()
                                         ? std::vector<double>{0.5}
                                         : duties_;
  const std::vector<Corner> corners =
      corners_.empty() ? std::vector<Corner>{base_sim_.corner} : corners_;
  const std::vector<bool> overrides =
      overrides_.empty() ? std::vector<bool>{false} : overrides_;
  const std::vector<std::uint64_t> seeds =
      seeds_.empty() ? std::vector<std::uint64_t>{0} : seeds_;

  std::vector<OperatingPoint> pts;
  for (std::size_t d = 0; d < designs_.size(); ++d)
    for (const Frequency f : fs_)
      for (const double duty : duties)
        for (const Corner c : corners)
          for (const std::uint64_t s : seeds)
            for (const bool ov : overrides) {
              OperatingPoint p;
              p.design = d;
              p.f = f;
              p.duty_high = duty;
              p.corner = c;
              p.override_gating = ov;
              p.seed = s;
              pts.push_back(std::move(p));
            }
  pts.insert(pts.end(), extra_.begin(), extra_.end());
  return pts;
}

// --- Experiment -------------------------------------------------------------

Experiment::Experiment(SweepSpec spec) : spec_(std::move(spec)) {
  SCPG_REQUIRE(!spec_.designs_.empty(), "sweep needs at least one design");
  SCPG_REQUIRE(spec_.cycles_ >= 1, "need at least one measured cycle");
  SCPG_REQUIRE(spec_.warmup_ >= 1,
               "need at least one warm-up cycle (X flush)");
  design_digests_.reserve(spec_.designs_.size());
  for (const Netlist* nl : spec_.designs_)
    design_digests_.push_back(structural_digest(*nl));
}

namespace {

void mix_sim_config(Fnv1a& h, const SimConfig& cfg) {
  h.mix_double(cfg.corner.vdd.v);
  h.mix_double(cfg.corner.temp_c);
  h.mix_double(cfg.rail_corrupt_frac);
  h.mix_double(cfg.rail_ready_frac);
  h.mix_double(cfg.crowbar_per_cell.v);
  h.mix_double(cfg.header_ron_derate);
  h.mix_double(cfg.rail_cap_factor);
  h.mix_double(cfg.x_input_leak_penalty);
}

} // namespace

std::uint64_t Experiment::point_digest(const OperatingPoint& pt) const {
  SCPG_REQUIRE(pt.design < spec_.designs_.size(),
               "operating point references an unknown design");
  Fnv1a h;
  h.mix(design_digests_[pt.design]);
  h.mix_double(pt.f.v);
  h.mix_double(pt.duty_high);
  SimConfig cfg = spec_.base_sim_;
  cfg.corner = pt.corner;
  mix_sim_config(h, cfg);
  h.mix(std::uint64_t(pt.override_gating ? 1 : 0));
  h.mix(pt.seed);
  h.mix(std::uint64_t(spec_.warmup_));
  h.mix(std::uint64_t(spec_.cycles_));
  h.mix(std::string_view(spec_.clock_port_));
  h.mix(std::string_view(spec_.override_port_));
  // Spec keys, not kinds: the digest stays byte-identical to the legacy
  // closure-only engine, so pre-redesign cache entries and RNG streams
  // are preserved.
  h.mix(std::string_view(spec_.stimulus_.key()));
  h.mix(std::string_view(spec_.setup_.key()));
  return h.digest();
}

sim::MeasureRequest Experiment::make_request(const OperatingPoint& pt,
                                             std::uint64_t digest) const {
  SCPG_REQUIRE(pt.f.v > 0, "frequency must be positive");
  sim::MeasureRequest rq;
  rq.nl = spec_.designs_[pt.design];
  rq.cfg = spec_.base_sim_;
  rq.cfg.corner = pt.corner;
  rq.f = pt.f;
  rq.duty_high = pt.duty_high;
  rq.override_gating = pt.override_gating;
  rq.warmup = spec_.warmup_;
  rq.cycles = spec_.cycles_;
  rq.clock_port = spec_.clock_port_;
  rq.override_port = spec_.override_port_;
  rq.stimulus = spec_.stimulus_.empty() ? nullptr : &spec_.stimulus_;
  rq.setup = spec_.setup_.empty() ? nullptr : &spec_.setup_;
  // The stream is keyed by content, not by row index: a cache hit hands
  // back exactly what this computation would produce, and adding or
  // reordering grid axes never shifts another point's stimulus.
  rq.seed = pt.seed;
  rq.digest = digest;
  rq.nl_digest = design_digests_[pt.design];
  return rq;
}

Measurement Experiment::measure_point(const sim::MeasureRequest& rq,
                                      sim::Backend chosen) const {
  std::optional<PowerTally> tally = sim::backend_impl(chosen).measure(rq);
  if (!tally) {
    // The run left the chosen backend's model mid-flight (a header was
    // commanded to sleep under a compiled point).  Forced Compiled must
    // not silently change estimator; Auto re-runs on the reference.
    SCPG_REQUIRE(spec_.backend_ != sim::Backend::Compiled,
                 "compiled backend left its model mid-run (a header was "
                 "commanded to sleep); use --backend auto or event");
    SCPG_OBS_COUNT("sim.backend.compiled.dynamic_fallbacks", 1);
    tally = sim::event_backend().measure(rq);
    SCPG_ASSERT(tally.has_value());
  }
  return finish_measurement(*tally);
}

Measurement Experiment::finish_measurement(const PowerTally& tally) const {
  Measurement r;
  r.tally = tally;
  r.cycles = spec_.cycles_;
  SCPG_ASSERT(r.tally.window.v > 0);
  r.avg_power = r.tally.average();
  r.energy_per_cycle = Energy{r.tally.total().v / double(spec_.cycles_)};
  return r;
}

namespace {

// The installed design gate; guarded because sweeps may run concurrently
// with a tool installing a gate (and TSan watches the engine suites).
std::mutex g_gate_m;
DesignGate g_gate; // NOLINT(cert-err58-cpp)

} // namespace

void set_design_gate(DesignGate gate) {
  const std::lock_guard lock(g_gate_m);
  g_gate = std::move(gate);
}

DesignGate design_gate() {
  const std::lock_guard lock(g_gate_m);
  if (g_gate) return g_gate;
  return [](const Netlist& nl, const GateContext&) { nl.check(); };
}

ResultCache& Experiment::result_cache() const {
  return spec_.cache_ ? *spec_.cache_ : ResultCache::global();
}

const Experiment::Prepared& Experiment::prepare() const {
  std::call_once(prep_once_, [this] {
    auto prep = std::make_unique<Prepared>();
    prep->pts = spec_.expand();
    for (const OperatingPoint& pt : prep->pts)
      SCPG_REQUIRE(pt.design < spec_.designs_.size(),
                   "operating point references an unknown design");

    // Fail fast on broken designs: every distinct design passes the gate
    // (by default Netlist::check(); the SCPG linter when installed)
    // before the first simulator is built.
    const DesignGate gate = design_gate();
    for (std::size_t d = 0; d < spec_.designs_.size(); ++d)
      gate(*spec_.designs_[d],
           GateContext{spec_.design_labels_[d], spec_.clock_port_});

    // Digests are computed once up front: they key each point's RNG
    // stream and its cache entry, and the aliasing check below needs all
    // of them.
    prep->digests.resize(prep->pts.size());
    for (std::size_t i = 0; i < prep->pts.size(); ++i)
      prep->digests[i] = point_digest(prep->pts[i]);

    // Equal digests mean equal computations — same Rng::stream, same
    // cache key.  That is correct (and exploited by the cache) when the
    // rows really are the same point, but a collision between rows
    // carrying *different* tags means the caller intended distinct
    // measurements — e.g. two point() entries tagged "gated"/"baseline"
    // whose payloads accidentally match.  Their identical stimulus
    // streams would silently alias the two rows, so reject the sweep
    // instead.  The tag itself is deliberately NOT part of the digest:
    // digests stay content-keyed so relabelling a point still hits the
    // cache.
    std::unordered_map<std::uint64_t, std::size_t> first_row;
    for (std::size_t i = 0; i < prep->pts.size(); ++i) {
      const auto [it, inserted] = first_row.emplace(prep->digests[i], i);
      if (inserted || prep->pts[it->second].tag == prep->pts[i].tag)
        continue;
      SCPG_REQUIRE(false,
                   "sweep rows " + std::to_string(it->second) + " (tag \"" +
                       prep->pts[it->second].tag + "\") and " +
                       std::to_string(i) + " (tag \"" + prep->pts[i].tag +
                       "\") have identical payloads and would share one RNG "
                       "stream; differentiate them (e.g. distinct seeds)");
    }

    // Opaque closures (no cache key) are invisible to hashing, so
    // caching them would alias distinct stimuli.
    prep->cacheable =
        spec_.use_cache_ &&
        (spec_.stimulus_.empty() || !spec_.stimulus_.key().empty()) &&
        (spec_.setup_.empty() || !spec_.setup_.key().empty());
    prep_ = std::move(prep);
  });
  return *prep_;
}

const std::vector<OperatingPoint>& Experiment::points() const {
  return prepare().pts;
}

std::uint64_t Experiment::row_digest(std::size_t row) const {
  const Prepared& prep = prepare();
  SCPG_REQUIRE(row < prep.digests.size(), "sweep row index out of range");
  return prep.digests[row];
}

PointResult Experiment::execute_row(const Prepared& prep,
                                    std::size_t row) const {
  const OperatingPoint& pt = prep.pts[row];
  const std::uint64_t digest = prep.digests[row];

  PointResult res;
  res.point = pt;
  const sim::MeasureRequest rq = make_request(pt, digest);
  // Static resolution is a pure function of the row's content, so it is
  // jobs-invariant and valid for cache hits too.
  const sim::Backend chosen = sim::resolve_backend(spec_.backend_, rq);
  res.backend = chosen;
  CacheKey key;
  if (prep.cacheable) {
    key.lo = digest;
    Fnv1a salted(0x9e3779b97f4a7c15ULL);
    salted.mix(design_digests_[pt.design]);
    salted.mix(digest);
    // Power numbers are only deterministic per backend (glitch energy is
    // an event-backend concept), so compiled results live under their own
    // cache identity.  Event keys are byte-identical to the pre-redesign
    // engine.
    if (chosen == sim::Backend::Compiled)
      salted.mix(std::string_view("sim-backend:compiled"));
    key.hi = salted.digest();
    if (const auto hit = result_cache().find(key)) {
      static_cast<Measurement&>(res) = *hit;
      res.cache_hit = true;
    }
  }
  if (!res.cache_hit) {
    static_cast<Measurement&>(res) = measure_point(rq, chosen);
    if (prep.cacheable) result_cache().store(key, res);
  }
  SCPG_OBS_COUNT("engine.points", 1);
  if (res.cache_hit) SCPG_OBS_COUNT("engine.cache_hits", 1);
  if (chosen == sim::Backend::Compiled)
    SCPG_OBS_COUNT("sim.backend.compiled.points", 1);
  else
    SCPG_OBS_COUNT("sim.backend.event.points", 1);
  return res;
}

void Experiment::execute_unit(const Prepared& prep,
                              const std::vector<std::size_t>& rows,
                              std::vector<PointResult>& results) const {
  const std::size_t n = rows.size();
  std::vector<sim::MeasureRequest> reqs(n);
  std::vector<CacheKey> keys(n);
  std::vector<std::size_t> miss;
  miss.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t row = rows[k];
    const OperatingPoint& pt = prep.pts[row];
    const std::uint64_t digest = prep.digests[row];
    PointResult& res = results[row];
    res.point = pt;
    reqs[k] = make_request(pt, digest);
    const sim::Backend chosen = sim::resolve_backend(spec_.backend_, reqs[k]);
    SCPG_ASSERT(chosen == sim::Backend::Compiled); // partition invariant
    res.backend = chosen;
    if (prep.cacheable) {
      keys[k].lo = digest;
      Fnv1a salted(0x9e3779b97f4a7c15ULL);
      salted.mix(design_digests_[pt.design]);
      salted.mix(digest);
      salted.mix(std::string_view("sim-backend:compiled"));
      keys[k].hi = salted.digest();
      if (const auto hit = result_cache().find(keys[k])) {
        static_cast<Measurement&>(res) = *hit;
        res.cache_hit = true;
      }
    }
    if (!res.cache_hit) miss.push_back(k);
  }

  if (!miss.empty()) {
    // One bit-parallel pass over the misses: lane j simulates miss[j].
    // Lane results are bit-identical to scalar measure() calls, so the
    // (cache-dependent) lane packing never shows up in the numbers.
    std::vector<sim::MeasureRequest> lane_reqs;
    lane_reqs.reserve(miss.size());
    for (const std::size_t k : miss) lane_reqs.push_back(reqs[k]);
    std::vector<std::optional<PowerTally>> tallies(miss.size());
    sim::backend_impl(sim::Backend::Compiled)
        .measure_group(lane_reqs,
                       std::span<std::optional<PowerTally>>(tallies));
    for (std::size_t j = 0; j < miss.size(); ++j) {
      const std::size_t k = miss[j];
      PointResult& res = results[rows[k]];
      std::optional<PowerTally> tally = std::move(tallies[j]);
      if (!tally) {
        // Same contract as measure_point: a lane that left the compiled
        // model re-runs on the reference under Auto, errors when forced.
        SCPG_REQUIRE(spec_.backend_ != sim::Backend::Compiled,
                     "compiled backend left its model mid-run (a header was "
                     "commanded to sleep); use --backend auto or event");
        SCPG_OBS_COUNT("sim.backend.compiled.dynamic_fallbacks", 1);
        tally = sim::event_backend().measure(reqs[k]);
        SCPG_ASSERT(tally.has_value());
      }
      static_cast<Measurement&>(res) = finish_measurement(*tally);
      if (prep.cacheable) result_cache().store(keys[k], res);
    }
  }

  for (std::size_t k = 0; k < n; ++k) {
    SCPG_OBS_COUNT("engine.points", 1);
    if (results[rows[k]].cache_hit) SCPG_OBS_COUNT("engine.cache_hits", 1);
    SCPG_OBS_COUNT("sim.backend.compiled.points", 1);
  }
}

PointResult Experiment::run_row(std::size_t row) const {
  const Prepared& prep = prepare();
  SCPG_REQUIRE(row < prep.pts.size(), "sweep row index out of range");
  return execute_row(prep, row);
}

SweepResult Experiment::run() const {
  const Prepared& prep = prepare();
  const std::vector<OperatingPoint>& pts = prep.pts;

  // Partition rows into execution units.  Rows that resolve to the
  // compiled backend and differ only in (seed, digest) — the grouping
  // key is every other per-row axis; the shared fixture is spec-wide —
  // form bit-parallel groups of up to 64 lanes, filled in row order.
  // Everything else runs as a singleton.  The partition is a pure
  // function of row content (never of cache state or job count), and
  // per-lane results are bit-identical to scalar runs, so grouping is
  // invisible to results, caching, and determinism guarantees.
  std::vector<std::vector<std::size_t>> units;
  units.reserve(pts.size());
  {
    std::map<std::tuple<std::size_t, double, double, double, double, bool>,
             std::size_t>
        open; // grouping key -> unit index still accepting lanes
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const OperatingPoint& pt = pts[i];
      const sim::MeasureRequest rq = make_request(pt, prep.digests[i]);
      if (sim::resolve_backend(spec_.backend_, rq) !=
          sim::Backend::Compiled) {
        units.push_back({i});
        continue;
      }
      const auto key =
          std::make_tuple(pt.design, pt.f.v, pt.duty_high, pt.corner.vdd.v,
                          pt.corner.temp_c, pt.override_gating);
      if (const auto it = open.find(key);
          it != open.end() && units[it->second].size() < 64) {
        units[it->second].push_back(i);
      } else {
        open[key] = units.size();
        units.push_back({i});
      }
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::mutex progress_m;
  Progress prog;
  prog.total = pts.size();

  obs::Scope sweep_scope("engine.sweep", "engine");
  if (obs::trace_enabled())
    sweep_scope.args("{\"points\": " + std::to_string(pts.size()) +
                     ", \"units\": " + std::to_string(units.size()) + "}");

  std::vector<PointResult> results(pts.size());
  auto run_unit = [&](std::size_t u) -> int {
    const std::vector<std::size_t>& rows = units[u];

    // Queue delay: how long this unit sat behind others before a worker
    // picked it up (wall-clock; never digest-visible).
    SCPG_OBS_TIMING_HIST(
        "engine.queue_delay.ms",
        (std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count()));
    obs::Scope point_scope("engine.point", "engine");
    if (obs::trace_enabled()) {
      std::string a = "{\"row\": " + std::to_string(rows[0]) +
                      ", \"lanes\": " + std::to_string(rows.size()) +
                      ", \"tag\": ";
      json::append_quoted(a, pts[rows[0]].tag);
      a += "}";
      point_scope.args(std::move(a));
    }

    if (rows.size() == 1)
      results[rows[0]] = execute_row(prep, rows[0]);
    else
      execute_unit(prep, rows, results);

    if (spec_.progress_) {
      const std::lock_guard lock(progress_m);
      for (const std::size_t i : rows) {
        ++prog.done;
        prog.cache_hits += results[i].cache_hit ? 1 : 0;
      }
      prog.elapsed_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      prog.eta_s = prog.done > 0 ? prog.elapsed_s / double(prog.done) *
                                       double(prog.total - prog.done)
                                 : 0.0;
      spec_.progress_(prog);
    }
    return 0;
  };

  (void)parallel_map(units.size(), spec_.jobs_, run_unit);
  return SweepResult(std::move(results));
}

} // namespace scpg::engine
