#include "engine/sweep.hpp"

#include <chrono>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "engine/cache.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace scpg::engine {

// --- SweepResult ------------------------------------------------------------

const PointResult* SweepResult::find(std::string_view tag) const {
  for (const auto& r : rows_)
    if (r.point.tag == tag) return &r;
  return nullptr;
}

const PointResult& SweepResult::at_tag(std::string_view tag) const {
  const PointResult* r = find(tag);
  SCPG_REQUIRE(r != nullptr,
               "no sweep row tagged \"" + std::string(tag) + "\"");
  return *r;
}

std::size_t SweepResult::cache_hits() const {
  std::size_t n = 0;
  for (const auto& r : rows_) n += r.cache_hit ? 1 : 0;
  return n;
}

// --- SweepSpec --------------------------------------------------------------

SweepSpec& SweepSpec::design(const Netlist& nl, std::string label) {
  designs_.push_back(&nl);
  design_labels_.push_back(label.empty() ? nl.name() : std::move(label));
  return *this;
}

SweepSpec& SweepSpec::frequencies(std::vector<Frequency> fs) {
  fs_ = std::move(fs);
  return *this;
}

SweepSpec& SweepSpec::duties(std::vector<double> ds) {
  duties_ = std::move(ds);
  return *this;
}

SweepSpec& SweepSpec::corners(std::vector<Corner> cs) {
  corners_ = std::move(cs);
  return *this;
}

SweepSpec& SweepSpec::overrides(std::vector<bool> ovs) {
  overrides_ = std::move(ovs);
  return *this;
}

SweepSpec& SweepSpec::seeds(std::vector<std::uint64_t> ss) {
  seeds_ = std::move(ss);
  return *this;
}

SweepSpec& SweepSpec::point(OperatingPoint p) {
  extra_.push_back(std::move(p));
  return *this;
}

SweepSpec& SweepSpec::base_sim(SimConfig cfg) {
  base_sim_ = cfg;
  return *this;
}

SweepSpec& SweepSpec::cycles(int measured, int warmup) {
  cycles_ = measured;
  warmup_ = warmup;
  return *this;
}

SweepSpec& SweepSpec::clock_port(std::string name) {
  clock_port_ = std::move(name);
  return *this;
}

SweepSpec& SweepSpec::override_port(std::string name) {
  override_port_ = std::move(name);
  return *this;
}

SweepSpec& SweepSpec::stimulus(Stimulus fn, std::string cache_key) {
  stimulus_ = std::move(fn);
  stimulus_key_ = std::move(cache_key);
  return *this;
}

SweepSpec& SweepSpec::setup(Setup fn, std::string cache_key) {
  setup_ = std::move(fn);
  setup_key_ = std::move(cache_key);
  return *this;
}

SweepSpec& SweepSpec::jobs(int n) {
  jobs_ = n;
  return *this;
}

SweepSpec& SweepSpec::use_cache(bool on) {
  use_cache_ = on;
  return *this;
}

SweepSpec& SweepSpec::on_progress(ProgressFn fn) {
  progress_ = std::move(fn);
  return *this;
}

std::vector<OperatingPoint> SweepSpec::expand() const {
  // Unset axes contribute one default element; an unset frequency axis
  // contributes nothing (the grid is empty, only explicit points run).
  const std::vector<double> duties = duties_.empty()
                                         ? std::vector<double>{0.5}
                                         : duties_;
  const std::vector<Corner> corners =
      corners_.empty() ? std::vector<Corner>{base_sim_.corner} : corners_;
  const std::vector<bool> overrides =
      overrides_.empty() ? std::vector<bool>{false} : overrides_;
  const std::vector<std::uint64_t> seeds =
      seeds_.empty() ? std::vector<std::uint64_t>{0} : seeds_;

  std::vector<OperatingPoint> pts;
  for (std::size_t d = 0; d < designs_.size(); ++d)
    for (const Frequency f : fs_)
      for (const double duty : duties)
        for (const Corner c : corners)
          for (const std::uint64_t s : seeds)
            for (const bool ov : overrides) {
              OperatingPoint p;
              p.design = d;
              p.f = f;
              p.duty_high = duty;
              p.corner = c;
              p.override_gating = ov;
              p.seed = s;
              pts.push_back(std::move(p));
            }
  pts.insert(pts.end(), extra_.begin(), extra_.end());
  return pts;
}

// --- Experiment -------------------------------------------------------------

Experiment::Experiment(SweepSpec spec) : spec_(std::move(spec)) {
  SCPG_REQUIRE(!spec_.designs_.empty(), "sweep needs at least one design");
  SCPG_REQUIRE(spec_.cycles_ >= 1, "need at least one measured cycle");
  SCPG_REQUIRE(spec_.warmup_ >= 1,
               "need at least one warm-up cycle (X flush)");
  design_digests_.reserve(spec_.designs_.size());
  for (const Netlist* nl : spec_.designs_)
    design_digests_.push_back(structural_digest(*nl));
}

namespace {

void mix_sim_config(Fnv1a& h, const SimConfig& cfg) {
  h.mix_double(cfg.corner.vdd.v);
  h.mix_double(cfg.corner.temp_c);
  h.mix_double(cfg.rail_corrupt_frac);
  h.mix_double(cfg.rail_ready_frac);
  h.mix_double(cfg.crowbar_per_cell.v);
  h.mix_double(cfg.header_ron_derate);
  h.mix_double(cfg.rail_cap_factor);
  h.mix_double(cfg.x_input_leak_penalty);
}

} // namespace

std::uint64_t Experiment::point_digest(const OperatingPoint& pt) const {
  SCPG_REQUIRE(pt.design < spec_.designs_.size(),
               "operating point references an unknown design");
  Fnv1a h;
  h.mix(design_digests_[pt.design]);
  h.mix_double(pt.f.v);
  h.mix_double(pt.duty_high);
  SimConfig cfg = spec_.base_sim_;
  cfg.corner = pt.corner;
  mix_sim_config(h, cfg);
  h.mix(std::uint64_t(pt.override_gating ? 1 : 0));
  h.mix(pt.seed);
  h.mix(std::uint64_t(spec_.warmup_));
  h.mix(std::uint64_t(spec_.cycles_));
  h.mix(std::string_view(spec_.clock_port_));
  h.mix(std::string_view(spec_.override_port_));
  h.mix(std::string_view(spec_.stimulus_key_));
  h.mix(std::string_view(spec_.setup_key_));
  return h.digest();
}

Measurement Experiment::measure_point(const OperatingPoint& pt,
                                      std::uint64_t digest) const {
  SCPG_REQUIRE(pt.f.v > 0, "frequency must be positive");
  const Netlist& nl = *spec_.designs_[pt.design];

  SimConfig cfg = spec_.base_sim_;
  cfg.corner = pt.corner;
  Simulator sim(nl, cfg);
  sim.init_flops_to_zero();

  const NetId clk = nl.port_net(spec_.clock_port_);
  if (const PortId ov = nl.find_port(spec_.override_port_); ov.valid())
    sim.drive_at(0, nl.port(ov).net,
                 pt.override_gating ? Logic::L0 : Logic::L1);
  if (spec_.setup_) spec_.setup_(sim);

  const SimTime T = to_fs(period(pt.f));
  // Low phase first: the clock rises after one low interval so the gated
  // domain starts powered.
  const SimTime first_rise = SimTime(double(T) * (1.0 - pt.duty_high));
  sim.add_clock(clk, pt.f, pt.duty_high, first_rise);

  // The stream is keyed by content, not by row index: a cache hit hands
  // back exactly what this computation would produce, and adding or
  // reordering grid axes never shifts another point's stimulus.
  Rng rng = Rng::stream(pt.seed, digest);
  int cycle = -1;
  sim.on_rising_edge(clk, [this, &sim, &rng, &cycle]() {
    ++cycle;
    if (cycle == spec_.warmup_) sim.reset_tally();
    if (spec_.stimulus_) spec_.stimulus_(sim, cycle, rng);
  });

  const SimTime t_end =
      first_rise + T * SimTime(spec_.warmup_ + spec_.cycles_);
  sim.run_until(t_end);

  Measurement r;
  r.tally = sim.tally();
  r.cycles = spec_.cycles_;
  SCPG_ASSERT(r.tally.window.v > 0);
  r.avg_power = r.tally.average();
  r.energy_per_cycle = Energy{r.tally.total().v / double(spec_.cycles_)};
  return r;
}

namespace {

// The installed design gate; guarded because sweeps may run concurrently
// with a tool installing a gate (and TSan watches the engine suites).
std::mutex g_gate_m;
DesignGate g_gate; // NOLINT(cert-err58-cpp)

} // namespace

void set_design_gate(DesignGate gate) {
  const std::lock_guard lock(g_gate_m);
  g_gate = std::move(gate);
}

DesignGate design_gate() {
  const std::lock_guard lock(g_gate_m);
  if (g_gate) return g_gate;
  return [](const Netlist& nl, const GateContext&) { nl.check(); };
}

const Experiment::Prepared& Experiment::prepare() const {
  std::call_once(prep_once_, [this] {
    auto prep = std::make_unique<Prepared>();
    prep->pts = spec_.expand();
    for (const OperatingPoint& pt : prep->pts)
      SCPG_REQUIRE(pt.design < spec_.designs_.size(),
                   "operating point references an unknown design");

    // Fail fast on broken designs: every distinct design passes the gate
    // (by default Netlist::check(); the SCPG linter when installed)
    // before the first simulator is built.
    const DesignGate gate = design_gate();
    for (std::size_t d = 0; d < spec_.designs_.size(); ++d)
      gate(*spec_.designs_[d],
           GateContext{spec_.design_labels_[d], spec_.clock_port_});

    // Digests are computed once up front: they key each point's RNG
    // stream and its cache entry, and the aliasing check below needs all
    // of them.
    prep->digests.resize(prep->pts.size());
    for (std::size_t i = 0; i < prep->pts.size(); ++i)
      prep->digests[i] = point_digest(prep->pts[i]);

    // Equal digests mean equal computations — same Rng::stream, same
    // cache key.  That is correct (and exploited by the cache) when the
    // rows really are the same point, but a collision between rows
    // carrying *different* tags means the caller intended distinct
    // measurements — e.g. two point() entries tagged "gated"/"baseline"
    // whose payloads accidentally match.  Their identical stimulus
    // streams would silently alias the two rows, so reject the sweep
    // instead.  The tag itself is deliberately NOT part of the digest:
    // digests stay content-keyed so relabelling a point still hits the
    // cache.
    std::unordered_map<std::uint64_t, std::size_t> first_row;
    for (std::size_t i = 0; i < prep->pts.size(); ++i) {
      const auto [it, inserted] = first_row.emplace(prep->digests[i], i);
      if (inserted || prep->pts[it->second].tag == prep->pts[i].tag)
        continue;
      SCPG_REQUIRE(false,
                   "sweep rows " + std::to_string(it->second) + " (tag \"" +
                       prep->pts[it->second].tag + "\") and " +
                       std::to_string(i) + " (tag \"" + prep->pts[i].tag +
                       "\") have identical payloads and would share one RNG "
                       "stream; differentiate them (e.g. distinct seeds)");
    }

    // Opaque closures (no cache key) are invisible to hashing, so
    // caching them would alias distinct stimuli.
    prep->cacheable =
        spec_.use_cache_ &&
        (!spec_.stimulus_ || !spec_.stimulus_key_.empty()) &&
        (!spec_.setup_ || !spec_.setup_key_.empty());
    prep_ = std::move(prep);
  });
  return *prep_;
}

const std::vector<OperatingPoint>& Experiment::points() const {
  return prepare().pts;
}

std::uint64_t Experiment::row_digest(std::size_t row) const {
  const Prepared& prep = prepare();
  SCPG_REQUIRE(row < prep.digests.size(), "sweep row index out of range");
  return prep.digests[row];
}

PointResult Experiment::execute_row(const Prepared& prep,
                                    std::size_t row) const {
  const OperatingPoint& pt = prep.pts[row];
  const std::uint64_t digest = prep.digests[row];

  PointResult res;
  res.point = pt;
  CacheKey key;
  if (prep.cacheable) {
    key.lo = digest;
    Fnv1a salted(0x9e3779b97f4a7c15ULL);
    salted.mix(design_digests_[pt.design]);
    salted.mix(digest);
    key.hi = salted.digest();
    if (const auto hit = ResultCache::global().find(key)) {
      static_cast<Measurement&>(res) = *hit;
      res.cache_hit = true;
    }
  }
  if (!res.cache_hit) {
    static_cast<Measurement&>(res) = measure_point(pt, digest);
    if (prep.cacheable) ResultCache::global().store(key, res);
  }
  SCPG_OBS_COUNT("engine.points", 1);
  if (res.cache_hit) SCPG_OBS_COUNT("engine.cache_hits", 1);
  return res;
}

PointResult Experiment::run_row(std::size_t row) const {
  const Prepared& prep = prepare();
  SCPG_REQUIRE(row < prep.pts.size(), "sweep row index out of range");
  return execute_row(prep, row);
}

SweepResult Experiment::run() const {
  const Prepared& prep = prepare();
  const std::vector<OperatingPoint>& pts = prep.pts;

  const auto t0 = std::chrono::steady_clock::now();
  std::mutex progress_m;
  Progress prog;
  prog.total = pts.size();

  obs::Scope sweep_scope("engine.sweep", "engine");
  if (obs::trace_enabled())
    sweep_scope.args("{\"points\": " + std::to_string(pts.size()) + "}");

  auto run_one = [&](std::size_t i) -> PointResult {
    const OperatingPoint& pt = pts[i];

    // Queue delay: how long this point sat behind others before a worker
    // picked it up (wall-clock; never digest-visible).
    SCPG_OBS_TIMING_HIST(
        "engine.queue_delay.ms",
        (std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count()));
    obs::Scope point_scope("engine.point", "engine");
    if (obs::trace_enabled()) {
      std::string a = "{\"row\": " + std::to_string(i) + ", \"tag\": ";
      json::append_quoted(a, pt.tag);
      a += "}";
      point_scope.args(std::move(a));
    }

    PointResult res = execute_row(prep, i);

    if (spec_.progress_) {
      const std::lock_guard lock(progress_m);
      ++prog.done;
      prog.cache_hits += res.cache_hit ? 1 : 0;
      prog.elapsed_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      prog.eta_s = prog.done > 0 ? prog.elapsed_s / double(prog.done) *
                                       double(prog.total - prog.done)
                                 : 0.0;
      spec_.progress_(prog);
    }
    return res;
  };

  return SweepResult(parallel_map(pts.size(), spec_.jobs_, run_one));
}

} // namespace scpg::engine
