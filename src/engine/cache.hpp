// Result cache for the sweep engine.
//
// A measurement is a pure function of (netlist structural digest, point
// configuration digest) — see Experiment::point_digest — so repeated
// sweeps over overlapping grids (e.g. the same anchor frequencies in two
// benches, or a re-run with one axis extended) skip re-simulation.  Keys
// are 128-bit: the same content hashed by two differently-salted FNV-1a
// streams, making accidental collisions within a process vanishingly
// unlikely.  Caching preserves bit-identical results by construction:
// a hit returns exactly the Measurement the computation would produce.
//
// The cache is bounded: entries beyond the capacity evict in
// least-recently-used order (a find() refreshes recency), so a
// long-running campaign or service cannot grow it without limit.  The
// default capacity comfortably holds every point a paper reproduction
// touches; shrink it with set_capacity() in memory-constrained workers.
//
// Caches are instances, not a singleton: the process-global() cache
// serves the CLI tools and benches, while long-running services
// (src/serve) construct private instances so a daemon's hit accounting
// never aliases a worker subprocess's.  Each instance publishes its
// entry/eviction gauges under its own namespace ("<ns>.entries" /
// "<ns>.evictions"; the global uses "engine.cache") when metrics are
// enabled.  Persistence layers hook in two ways: a store hook observes
// every NEW insertion (write-through, e.g. to an append-only disk log)
// and preload() injects entries loaded from disk without re-firing it.
//
// Sweeps whose stimulus/setup closures carry no cache key string are not
// cacheable (the closure contents are invisible to hashing) and bypass
// this cache entirely.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/sweep.hpp"

namespace scpg::engine {

struct CacheKey {
  std::uint64_t lo{0};
  std::uint64_t hi{0};

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return std::size_t(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Mutex-guarded LRU map; safe for concurrent workers.
class ResultCache {
public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  /// `gauge_ns` namespaces this instance's obs gauges; instances with
  /// distinct namespaces never alias each other's metrics.
  ResultCache() = default;
  explicit ResultCache(std::string gauge_ns) : gauge_ns_(std::move(gauge_ns)) {}

  static ResultCache& global();

  /// A hit refreshes the entry's recency.
  [[nodiscard]] std::optional<Measurement> find(const CacheKey& key);
  void store(const CacheKey& key, const Measurement& m);

  /// Like store(), but never fires the store hook: persistence layers
  /// use it to warm the cache from disk without echoing every loaded
  /// entry straight back out.
  void preload(const CacheKey& key, const Measurement& m);

  /// Observes every insertion of a NEW key (refreshes of existing keys
  /// are silent).  Fired after the cache mutex is released, so the hook
  /// may take its own locks and call back into this cache; under
  /// concurrent stores the firing order may differ from insertion
  /// order.  Pass an empty function to uninstall.
  using StoreHook = std::function<void(const CacheKey&, const Measurement&)>;
  void set_store_hook(StoreHook hook);

  /// Every entry, most-recently-used first (the order a persistence
  /// layer should write so that reload + LRU-evict drops the coldest).
  [[nodiscard]] std::vector<std::pair<CacheKey, Measurement>> entries_mru()
      const;

  void clear();
  [[nodiscard]] std::size_t size() const;

  /// Entries evicted (LRU) since construction or the last clear().
  [[nodiscard]] std::uint64_t evictions() const;

  /// Caps the entry count; an over-full cache evicts down immediately.
  /// A capacity of 0 disables storage entirely (finds always miss).
  void set_capacity(std::size_t cap);
  [[nodiscard]] std::size_t capacity() const;

private:
  bool insert_locked(const CacheKey& key, const Measurement& m);
  void evict_to_capacity_locked();
  void publish_gauges_locked();

  struct Entry {
    Measurement m;
    std::list<CacheKey>::iterator lru_it;
  };

  mutable std::mutex m_;
  std::list<CacheKey> lru_; // front = most recently used
  std::unordered_map<CacheKey, Entry, CacheKeyHash> map_;
  std::size_t capacity_{kDefaultCapacity};
  std::uint64_t evictions_{0};
  std::string gauge_ns_{"engine.cache"};
  StoreHook store_hook_;
};

} // namespace scpg::engine
