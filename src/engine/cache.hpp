// Process-global result cache for the sweep engine.
//
// A measurement is a pure function of (netlist structural digest, point
// configuration digest) — see Experiment::point_digest — so repeated
// sweeps over overlapping grids (e.g. the same anchor frequencies in two
// benches, or a re-run with one axis extended) skip re-simulation.  Keys
// are 128-bit: the same content hashed by two differently-salted FNV-1a
// streams, making accidental collisions within a process vanishingly
// unlikely.  Caching preserves bit-identical results by construction:
// a hit returns exactly the Measurement the computation would produce.
//
// Sweeps whose stimulus/setup closures carry no cache key string are not
// cacheable (the closure contents are invisible to hashing) and bypass
// this cache entirely.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "engine/sweep.hpp"

namespace scpg::engine {

struct CacheKey {
  std::uint64_t lo{0};
  std::uint64_t hi{0};

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return std::size_t(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Mutex-guarded map; safe for concurrent workers.  The map only grows —
/// entries are a few hundred bytes each, and a whole paper reproduction
/// is a few thousand points.
class ResultCache {
public:
  static ResultCache& global();

  [[nodiscard]] std::optional<Measurement> find(const CacheKey& key) const;
  void store(const CacheKey& key, const Measurement& m);

  void clear();
  [[nodiscard]] std::size_t size() const;

private:
  mutable std::mutex m_;
  std::unordered_map<CacheKey, Measurement, CacheKeyHash> map_;
};

} // namespace scpg::engine
