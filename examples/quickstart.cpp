// Quickstart: apply sub-clock power gating to a small design and measure
// the saving.
//
//   1. build a gate-level design (an 8-bit multiplier) against the
//      synthetic 90 nm library;
//   2. run apply_scpg() — the paper's two extra flow steps (domain split +
//      power-gating fabric);
//   3. simulate both designs at 100 kHz / 0.6 V and compare average power.
#include <iostream>

#include "engine/sweep.hpp"
#include "gen/mult16.hpp"
#include "netlist/report.hpp"
#include "scpg/transform.hpp"
#include "util/rng.hpp"

using namespace scpg;
using namespace scpg::literals;

int main() {
  const Library lib = Library::scpg90();

  // 1. The design: an 8-bit registered multiplier.
  Netlist original = gen::make_multiplier(lib, 8);
  Netlist gated = gen::make_multiplier(lib, 8);

  // 2. Sub-clock power gating, default options (X2 header bank, adaptive
  //    isolation controller, boundary buffers).
  const ScpgInfo info = apply_scpg(gated);
  std::cout << "SCPG transform: " << info.cells_gated << " cells gated, "
            << info.isolation_cells << " isolation cells, area +"
            << int(100.0 * info.area_overhead() + 0.5) << "%\n\n";

  // 3. Measure both at 100 kHz, 0.6 V, random operands each cycle.  Both
  //    designs go into one SweepSpec; the engine runs them as parallel
  //    jobs and the per-point RNG stream keeps the result independent of
  //    the job count.
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  engine::SweepSpec spec;
  spec.design(original, "original")
      .design(gated, "gated")
      .frequency(100.0_kHz)
      .base_sim(cfg)
      .cycles(16)
      .stimulus(
          [](Simulator& s, int, Rng& rng) {
            s.drive_bus_at(s.now() + to_fs(1.0_ns), "a", rng.bits(8), 8);
            s.drive_bus_at(s.now() + to_fs(1.0_ns), "b", rng.bits(8), 8);
          },
          "quickstart:rand8");

  const engine::SweepResult res = engine::Experiment(std::move(spec)).run();
  const engine::PointResult& r0 = res[0];
  const engine::PointResult& r1 = res[1];

  std::cout << "no power gating: " << in_uW(r0.avg_power) << " uW\n";
  std::cout << "sub-clock gated: " << in_uW(r1.avg_power) << " uW\n";
  std::cout << "saving:          "
            << 100.0 * (1.0 - r1.avg_power.v / r0.avg_power.v) << " %\n\n";

  std::cout << "energy buckets of the gated run (per "
            << r1.cycles << " cycles):\n";
  const PowerTally& t = r1.tally;
  std::cout << "  dynamic   " << in_pJ(t.dynamic_total()) << " pJ\n";
  std::cout << "  leak AON  " << in_pJ(t.leakage_aon) << " pJ\n";
  std::cout << "  leak gated" << in_pJ(t.leakage_gated) << " pJ\n";
  std::cout << "  overheads " << in_pJ(t.gating_overhead())
            << " pJ (rail recharge + crowbar + header gate)\n";
  return 0;
}
