// The paper's motivating application: a wireless sensor node powered by
// an energy harvester (§I, §III-A).  The harvester delivers a strict
// power budget; the question is how much computation fits inside it.
//
// This example sizes a 16-bit multiplier-based DSP block against three
// harvester classes and shows the SCPG operating point for each — the
// same analysis as the paper's "45x more energy efficient within the
// same power budget" claim, through the public analysis API.
#include <iostream>

#include "engine/sweep.hpp"
#include "gen/mult16.hpp"
#include "util/error.hpp"
#include "scpg/analysis.hpp"
#include "scpg/transform.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace scpg;
using namespace scpg::literals;

int main() {
  const Library lib = Library::scpg90();
  Netlist original = gen::make_multiplier(lib, 16);
  Netlist gated = gen::make_multiplier(lib, 16);
  apply_scpg(gated);

  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};

  // Calibrate the dynamic energy once with a short engine run.
  engine::SweepSpec cal;
  cal.design(gated)
      .frequency(1.0_MHz)
      .base_sim(cfg)
      .cycles(16)
      .override_gating(true)
      .stimulus(
          [](Simulator& s, int, Rng& rng) {
            s.drive_bus_at(s.now() + to_fs(1.0_ns), "a", rng.bits(16), 16);
            s.drive_bus_at(s.now() + to_fs(1.0_ns), "b", rng.bits(16), 16);
          },
          "sensor:rand16");
  const Energy e_dyn{engine::Experiment(std::move(cal))
                         .run()[0]
                         .tally.dynamic_total()
                         .v /
                     16.0};

  const ScpgPowerModel m_orig = ScpgPowerModel::extract(original, cfg, e_dyn);
  const ScpgPowerModel m_gated = ScpgPowerModel::extract(gated, cfg, e_dyn);

  std::cout << "wireless sensor node DSP block (16-bit MAC core), 0.6 V\n";
  std::cout << "leakage floor without gating: "
            << TextTable::num(
                   in_uW(m_orig.average_power_ungated(1.0_kHz)), 1)
            << " uW\n\n";

  struct Harvester {
    const char* name;
    Power budget;
  };
  const Harvester harvesters[] = {
      {"thermoelectric wearable  (~35 uW)", 35.0_uW},
      {"indoor photovoltaic cell (~60 uW)", 60.0_uW},
      {"vibration harvester     (~120 uW)", 120.0_uW},
  };

  for (const Harvester& h : harvesters) {
    std::cout << "== " << h.name << " ==\n";
    try {
      const BudgetComparison c = compare_at_budget(
          m_orig, m_gated, h.budget, 1.0_kHz, 40.0_MHz, /*jobs=*/0);
      TextTable t;
      t.header({"mode", "multiplies/s", "energy/op"});
      auto row = [&](const char* n, const BudgetPoint& p) {
        t.row({n, TextTable::num(p.f.v / 1e3, 0) + " k",
               TextTable::num(in_pJ(p.energy), 2) + " pJ"});
      };
      row("no gating", c.none);
      row("SCPG @50%", c.scpg50);
      row("SCPG-Max", c.scpg_max);
      t.print(std::cout);
      if (c.speedup_max() > 1.05)
        std::cout << "SCPG-Max fits " << TextTable::num(c.speedup_max(), 1)
                  << "x more work into the same harvester, "
                  << TextTable::num(c.energy_gain_max(), 1)
                  << "x more energy-efficiently\n\n";
      else
        std::cout << "this budget already runs above the SCPG convergence "
                     "point - assert override_n and run ungated\n\n";
    } catch (const InfeasibleError& e) {
      std::cout << "infeasible: " << e.what() << "\n\n";
    }
  }

  std::cout << "burst mode: assert override_n=0 and the block runs at "
            << TextTable::num(
                   in_MHz(Frequency{
                       1.0 / (m_gated.t_eval_setup().v)}),
                   0)
            << " MHz from the same silicon (the paper's MSP430-style "
               "slow/fast trade-off, §IV).\n";
  return 0;
}
