// Walks the paper's design flow (Fig 5) end to end, showing the artefacts
// a real EDA run would produce at each step:
//
//   RTL/netlist -> [step 1: split comb/seq into domains]
//               -> [step 2: add isolation + controller + headers]
//               -> timing signoff (STA) -> power signoff (simulation)
//
// The structural Verilog of the split design (the paper's "separate
// verilog module" artefact) and a Liberty-lite excerpt of the cell
// library are printed so the flow is inspectable.
#include <iostream>
#include <sstream>

#include "gen/mult16.hpp"
#include "netlist/report.hpp"
#include "netlist/verilog.hpp"
#include "scpg/transform.hpp"
#include "sta/sta.hpp"
#include "tech/liberty.hpp"

using namespace scpg;
using namespace scpg::literals;

int main() {
  const Library lib = Library::scpg90();
  std::cout << "=== SCPG design flow (paper Fig 5) ===\n\n";

  std::cout << "--- library: Liberty-lite excerpt ---\n";
  {
    std::istringstream all(write_liberty_string(lib));
    std::string line;
    for (int i = 0; i < 14 && std::getline(all, line); ++i)
      std::cout << line << '\n';
    std::cout << "  ... (" << lib.size() << " cells)\n\n";
  }

  // A small design so the netlists stay readable.
  Netlist nl = gen::make_multiplier(lib, 4);
  print_stats(compute_stats(nl), std::cout, "--- synthesised design ---");

  std::cout << "\n--- steps 1+2: apply sub-clock power gating ---\n";
  const ScpgInfo info = apply_scpg(nl);
  print_stats(compute_stats(nl), std::cout, "after transform:");
  std::cout << "  area overhead: " << 100.0 * info.area_overhead()
            << " %\n\n";

  std::cout << "--- split structural Verilog (step 1 artefact, "
               "abridged) ---\n";
  {
    std::istringstream split(
        write_verilog_string(nl, {.split_domains = true}));
    std::string line;
    int shown = 0;
    while (std::getline(split, line)) {
      const bool interesting =
          line.find("module") != std::string::npos ||
          line.find("u_pd_comb") != std::string::npos ||
          line.find("u_hdr") != std::string::npos ||
          line.find("u_scpg") != std::string::npos ||
          line.find("isoc") != std::string::npos;
      if (interesting && shown < 24) {
        std::cout << line << '\n';
        ++shown;
      }
    }
    std::cout << "  ...\n\n";
  }

  std::cout << "--- timing signoff at 0.6 V ---\n";
  const StaReport sta = run_sta(nl, {0.6_V, 25.0});
  std::cout << format_path(nl, sta);
  std::cout << "hold met: " << (sta.hold_met() ? "yes" : "NO") << "\n";
  std::cout << "\nSCPG feasibility: with a 50% duty the clock may not "
               "exceed "
            << in_MHz(Frequency{0.5 / (sta.t_eval + sta.endpoint_setup).v})
            << " MHz at this corner (low phase must fit T_eval + T_setup"
               " + T_PGStart).\n";
  return 0;
}
