// Runs a program on the SCM0 microcontroller three ways — instruction-set
// simulator, zero-delay gate-level simulation, and the timed power
// simulation with sub-clock power gating active — demonstrating the whole
// CPU stack: assembler, ISS, gate-level core, SCPG transform, power
// measurement.
#include <iostream>

#include "cpu/assembler.hpp"
#include "cpu/core.hpp"
#include "cpu/iss.hpp"
#include "cpu/workloads.hpp"
#include "engine/sweep.hpp"
#include "netlist/funcsim.hpp"
#include "scpg/transform.hpp"
#include "util/table.hpp"

using namespace scpg;
using namespace scpg::cpu;
using namespace scpg::literals;

int main() {
  const Library lib = Library::scpg90();

  // A user program: sum of the first 20 squares via repeated addition
  // (no hardware multiplier needed).
  const std::string program = R"(
; r5 = sum of k^2 for k = 1..20, computed as k^2 = sum of k copies of k
        movi r5, 0            ; total
        movi r1, 1            ; k
        movi r6, 21           ; limit
outer:  movi r2, 0            ; square accumulator
        add  r3, r1, r0       ; counter = k
inner:  add  r2, r2, r1
        addi r3, r3, -1
        bne  r3, r0, inner
        add  r5, r5, r2
        addi r1, r1, 1
        bne  r1, r6, outer
        st   r5, [r0+50]
        halt
)";
  const auto image = assemble(program);
  std::cout << "assembled " << image.size() << " words; first ones:\n";
  for (std::size_t i = 0; i < 4; ++i)
    std::cout << "  " << i << ": " << disassemble(image[i]) << '\n';

  // 1. ISS (golden reference).
  Iss iss(image);
  const auto steps = iss.run(100000);
  std::cout << "\nISS: " << steps << " instructions, result r5 = "
            << iss.reg(5) << " (expected 2870)\n";

  // 2. Zero-delay gate-level run, checked against the ISS.
  Scm0 core = make_scm0(lib, image);
  FuncSim fs(core.netlist);
  fs.reset();
  fs.set_input("clk", Logic::L0);
  fs.set_input("rst_n", Logic::L1);
  fs.eval();
  int cycles = 0;
  while (fs.output("halted") != Logic::L1 && cycles < 100000) {
    fs.clock();
    ++cycles;
  }
  auto* ram = dynamic_cast<RamModel*>(fs.macro_model(core.ram_cell));
  std::cout << "gate-level: " << cycles << " cycles, mem[50] = "
            << ram->word(50)
            << (ram->word(50) == iss.mem(50) ? "  [matches ISS]"
                                             : "  [MISMATCH]")
            << '\n';

  // 3. Timed power run with SCPG, at two operating points.
  Scm0 gated = make_scm0(lib, image);
  apply_scpg(gated.netlist, scm0_scpg_options());
  const SimConfig cfg = scm0_sim_config();

  TextTable t("\nSCM0 power running this program (0.6 V)");
  t.header({"clock", "gating", "avg power", "energy/cycle"});
  // All four operating points (2 frequencies x override on/off) run as
  // one parallel engine sweep.
  const std::vector<double> fms = {0.1, 2.0};
  engine::SweepSpec spec;
  spec.design(gated.netlist)
      .frequencies({Frequency{fms[0] * 1e6}, Frequency{fms[1] * 1e6}})
      .overrides({true, false})
      .base_sim(cfg)
      .cycles(40)
      .setup(
          [](Simulator& s) {
            s.drive_at(0, s.netlist().port_net("rst_n"), Logic::L1);
          },
          "scm0:rst_n@0");
  const engine::SweepResult res = engine::Experiment(std::move(spec)).run();
  for (const engine::PointResult& r : res)
    t.row({TextTable::num(in_MHz(r.point.f), 1) + " MHz",
           r.point.override_gating ? "off (override)" : "on",
           TextTable::num(in_uW(r.avg_power), 2) + " uW",
           TextTable::num(in_pJ(r.energy_per_cycle), 2) + " pJ"});
  t.print(std::cout);
  std::cout << "\nsub-clock power gating is transparent to the software: "
               "the same binary, the same results, less power at low "
               "clock rates.\n";
  return 0;
}
