// Reproduces the paper's Fig 4 timing diagram for one sub-clock gating
// cycle: the clock, the virtual rail collapsing after the rising edge
// (T_hold preserved by the decay), the adaptive isolation control
// engaging, the rail restoring at the falling edge (T_PGStart), isolation
// releasing, and the combinational logic re-evaluating (T_eval).
//
// Also writes scpg_fig4.vcd with every control signal and the rail
// voltage as a real-valued trace for a waveform viewer.
#include <iomanip>
#include <iostream>

#include "gen/mult16.hpp"
#include "scpg/rail_model.hpp"
#include "scpg/transform.hpp"
#include "sim/simulator.hpp"

using namespace scpg;
using namespace scpg::literals;

int main() {
  const Library lib = Library::scpg90();
  Netlist nl = gen::make_multiplier(lib, 8);
  const ScpgInfo info = apply_scpg(nl);

  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  const RailParams rail = extract_rail_params(nl, cfg);
  std::cout << "rail model: tau_decay "
            << std::setprecision(3) << in_ns(rail.tau_decay())
            << " ns, tau_charge " << in_ns(rail.tau_charge())
            << " ns, T_PGStart (full collapse) "
            << in_ns(rail.t_ready_from(Voltage{0.0}))
            << " ns, corrupt after " << in_ns(rail.t_corrupt())
            << " ns (this preserves T_hold)\n\n";

  VcdWriter vcd("scpg_fig4.vcd", nl);
  const std::size_t rail_sig = vcd.add_real("vrail");

  Simulator sim(nl, cfg);
  sim.init_flops_to_zero();
  sim.attach_vcd(&vcd, rail_sig);
  sim.drive_at(0, nl.port_net("override_n"), Logic::L1);
  sim.drive_bus_at(0, "a", 0x5A, 8);
  sim.drive_bus_at(0, "b", 0x33, 8);

  const Frequency f = 1.0_MHz; // 1 us period: all phases visible
  const SimTime T = to_fs(period(f));
  sim.add_clock(nl.port_net("clk"), f, 0.5, T / 2);

  // Sample a full cycle starting at the second rising edge.
  const SimTime t0 = T / 2 + T;
  const int kSamples = 64;
  std::string clk_row, niso_row, sense_row, rail_row, dnet_row;
  const NetId d_net = nl.cell(nl.flops().back()).inputs[0]; // an iso'd D

  for (int i = 0; i <= kSamples; ++i) {
    const SimTime t = t0 - T / 8 + (T + T / 4) * i / kSamples;
    sim.run_until(t);
    auto wave = [](Logic v) {
      switch (v) {
        case Logic::L0: return '_';
        case Logic::L1: return '#';
        default: return 'x';
      }
    };
    clk_row += wave(sim.value(info.clk));
    niso_row += wave(sim.value(info.niso));
    sense_row += wave(sim.value(info.sense));
    dnet_row += wave(sim.value(d_net));
    const double vr = sim.rail_voltage().v / 0.6;
    rail_row += vr > 0.95 ? '#' : vr > 0.7 ? '=' : vr > 0.3 ? '-' : '_';
  }

  std::cout << "one gating cycle at 1 MHz (posedge ~12% in, negedge at "
               "~52%):\n\n";
  std::cout << "  clk    " << clk_row << '\n';
  std::cout << "  VDDV   " << rail_row << "   (# full, = sagging, - low, _"
            << " collapsed)\n";
  std::cout << "  sense  " << sense_row
            << "   (TIEHI in the gated domain, Fig 3)\n";
  std::cout << "  NISO   " << niso_row
            << "   (isolation active-low: engages at posedge,\n"
               "                "
               "releases only when clk low AND rail up)\n";
  std::cout << "  D(iso) " << dnet_row
            << "   (register input: clamped, never X)\n\n";

  std::cout << "phases per the paper's Fig 4:\n";
  std::cout << "  T_hold    - rail decay delays corruption past the flop "
               "hold window\n";
  std::cout << "  T_PGoff   - domain gated for most of the high phase\n";
  std::cout << "  T_PGStart - rail recharge after the falling edge ("
            << in_ns(rail.t_ready_from(Voltage{0.0})) << " ns)\n";
  std::cout << "  T_eval    - combinational re-evaluation before the next "
               "posedge\n";
  std::cout << "\nwrote scpg_fig4.vcd (open in any VCD viewer)\n";
  return 0;
}
