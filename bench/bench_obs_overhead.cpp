// Measures the simulator's raw event-loop throughput so check.sh --obs
// can compare a build with the observability layer compiled in (but
// runtime-disabled — the shipping default) against one compiled with
// -DSCPG_OBS=OFF.  The disabled-mode macros must cost a single relaxed
// atomic load; this bench makes that claim falsifiable.
//
// Output (parsed by tools/check.sh):
//   obs_compiled_in 0|1
//   cycles_per_sec <best over SCPG_OBS_BENCH_REPEATS repeats>
//
// Best-of-N is deliberate: the comparison is between two builds on the
// same machine, and the minimum achievable time is the stable statistic.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "engine/sweep.hpp"
#include "gen/mult16.hpp"
#include "obs/obs.hpp"
#include "scpg/transform.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace scpg;
using namespace scpg::literals;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

double run_once(const Netlist& nl, int cycles) {
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  Simulator sim(nl, cfg);
  sim.init_flops_to_zero();
  const Frequency f = 1.0_MHz;
  const SimTime T = to_fs(period(f));
  sim.add_clock(nl.port_net("clk"), f, 0.5, T / 2);
  sim.drive_at(0, nl.port_net("override_n"), Logic::L1);
  Rng rng(1);
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < cycles; ++c) {
    sim.drive_bus_at(sim.now() + to_fs(1.0_ns), "a", rng.bits(16), 16);
    sim.drive_bus_at(sim.now() + to_fs(1.0_ns), "b", rng.bits(16), 16);
    sim.run_until(SimTime(c + 1) * T);
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return double(cycles) / dt.count();
}

} // namespace

int main() {
  const int cycles = env_int("SCPG_OBS_BENCH_CYCLES", 400);
  const int repeats = env_int("SCPG_OBS_BENCH_REPEATS", 5);

  const Library lib = Library::scpg90(); // must outlive the netlist
  Netlist nl = gen::make_multiplier(lib, 16);
  apply_scpg(nl);

  double best = 0.0;
  (void)run_once(nl, cycles); // warmup: page in code + allocator state
  for (int r = 0; r < repeats; ++r) {
    const double rate = run_once(nl, cycles);
    if (rate > best) best = rate;
  }
  std::printf("obs_compiled_in %d\n", obs::kCompiledIn ? 1 : 0);
  std::printf("cycles_per_sec %.0f\n", best);
  return 0;
}
