// Load benchmark for the scpgc serve daemon (EXPERIMENTS.md X7): an
// in-process Server on a real unix socket, hammered by persistent client
// threads with a mixed request stream — cache-hot sweeps (the daemon's
// steady state), pings (pure wire overhead), stats and lints — and
// per-class client-observed latency percentiles.
//
// The interesting number is the hot-sweep p99: once the result cache
// holds the grid, a served sweep is framing + admission + batch window +
// render, so its latency is the daemon's own overhead, not simulation.
// tools/check.sh --serve gates on it (budget SCPG_SERVE_P99_US, default
// 100000 us — generous; see X7 for measured values).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "campaign/spec.hpp"
#include "common.hpp"
#include "util/table.hpp"
#include "netlist/verilog.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace scpg;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kClients = 8;
constexpr int kPerClient = 250; // 2000 requests total

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

double pct(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1, std::size_t(q * double(v.size())))];
}

} // namespace

int main() {
  const Library& lib = benchx::bench_lib();

  char dir_template[] = "/tmp/scpg_serve_bench_XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) {
    std::cerr << "bench_serve_load: mkdtemp failed\n";
    return 1;
  }
  const std::string base(dir);
  const std::string netlist = base + "/mult8.v";
  {
    std::ofstream os(netlist);
    write_verilog(gen::make_multiplier(lib, 8), os);
  }

  serve::ServerOptions opt;
  opt.socket_path = base + "/serve.sock";
  opt.cache_path = base + "/serve.cache";
  opt.batch_window_ms = 2;
  serve::Server server(lib, opt);
  (void)server.start();

  campaign::CampaignSpec spec;
  spec.netlist_path = netlist;
  spec.points = 4;
  spec.cycles = 6;

  const auto sweep_rq = [&](std::uint64_t seed) {
    serve::Request rq;
    rq.op = serve::Op::Sweep;
    rq.sweep.spec = spec;
    rq.sweep.spec.seed = seed;
    rq.sweep.jobs = 2;
    return rq;
  };

  // Warm the cache: after this every sweep in the stream is a pure
  // cache-hit render.
  {
    serve::Client warm(opt.socket_path);
    for (std::uint64_t s = 0; s < 4; ++s) {
      const serve::Response r = warm.call(sweep_rq(s));
      if (!r.status.ok) {
        std::cerr << "bench_serve_load: warmup failed: " << r.status.error
                  << "\n";
        return 1;
      }
    }
  }

  // Mixed stream per client: 16 of every 20 requests are hot sweeps,
  // 2 pings, 1 stats, 1 lint.
  struct Lat {
    std::vector<double> sweep_hot, ping, stats, lint;
  };
  std::vector<Lat> lat(kClients);
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client(opt.socket_path);
      serve::Request ping;
      ping.op = serve::Op::Ping;
      serve::Request stats;
      stats.op = serve::Op::Stats;
      serve::Request lint;
      lint.op = serve::Op::Lint;
      lint.lint.netlist_path = netlist;
      for (int i = 0; i < kPerClient; ++i) {
        const int slot = i % 20;
        const serve::Request* rq = nullptr;
        std::vector<double>* sink = nullptr;
        serve::Request sweep;
        if (slot < 16) {
          sweep = sweep_rq(std::uint64_t((i + c) % 4));
          rq = &sweep;
          sink = &lat[std::size_t(c)].sweep_hot;
        } else if (slot < 18) {
          rq = &ping;
          sink = &lat[std::size_t(c)].ping;
        } else if (slot < 19) {
          rq = &stats;
          sink = &lat[std::size_t(c)].stats;
        } else {
          rq = &lint;
          sink = &lat[std::size_t(c)].lint;
        }
        const auto a = Clock::now();
        const serve::Response r = client.call(*rq);
        sink->push_back(us_between(a, Clock::now()));
        if (!r.status.ok && r.status.exit_code > 1) {
          std::cerr << "bench_serve_load: request failed: " << r.status.error
                    << "\n";
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double total_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  server.stop();

  std::map<std::string, std::vector<double>> merged;
  for (const Lat& l : lat) {
    merged["sweep_hot"].insert(merged["sweep_hot"].end(), l.sweep_hot.begin(),
                               l.sweep_hot.end());
    merged["ping"].insert(merged["ping"].end(), l.ping.begin(), l.ping.end());
    merged["stats"].insert(merged["stats"].end(), l.stats.begin(),
                           l.stats.end());
    merged["lint"].insert(merged["lint"].end(), l.lint.begin(), l.lint.end());
  }

  const int total = kClients * kPerClient;
  std::cout << "=== scpgc serve load (" << kClients << " clients, " << total
            << " mixed requests) ===\n";
  std::cout << "total: " << total << " requests in "
            << TextTable::num(total_s, 2) << " s  ("
            << TextTable::num(double(total) / total_s, 0)
            << " req/s)\n";
  for (auto& [name, v] : merged) {
    std::vector<double> copy = v;
    std::cout << name << ": count=" << v.size()
              << " p50_us=" << TextTable::num(pct(copy, 0.50), 0)
              << " p99_us=" << TextTable::num(pct(copy, 0.99), 0)
              << "\n";
  }
  return 0;
}
