// Reproduces the paper's energy-harvester scenarios (§III-A / §III-B):
//
//  S3 (multiplier): with a ~30 uW harvester budget, the unmodified design
//     runs at 100 kHz / 294.4 pJ, SCPG at ~2 MHz / 13.3 pJ, SCPG-Max at
//     ~5 MHz / 6.56 pJ -> 50x clock, 45x energy efficiency.
//  S4 (SCM0): with a ~250 uW budget, no-PG at ~1 MHz / 253 pJ, SCPG at
//     ~2 MHz / 130 pJ, SCPG-Max < 105 pJ -> >2x clock, >2.5x efficiency.
//
// Our budgets sit at the same relative margin above each design's leakage
// floor as the paper's did (30/29.23 and 250/243.65), so the scenarios
// are comparable despite the synthetic library's absolute offsets.
#include <iostream>

#include "common.hpp"

using namespace scpg;
using namespace scpg::benchx;

namespace {

void report(const std::string& title, const BudgetComparison& c,
            double paper_speedup, double paper_energy_gain) {
  std::cout << title << "\n  budget: " << TextTable::num(in_uW(c.budget), 1)
            << " uW\n";
  TextTable t;
  t.header({"mode", "clock", "power uW", "energy/op pJ"});
  auto row = [&](const char* name, const BudgetPoint& p) {
    t.row({name,
           in_MHz(p.f) >= 1.0
               ? TextTable::num(in_MHz(p.f), 2) + " MHz"
               : TextTable::num(in_kHz(p.f), 0) + " kHz",
           TextTable::num(in_uW(p.power), 2),
           TextTable::num(in_pJ(p.energy), 2)});
  };
  row("No Power Gating", c.none);
  row("SCPG @50%", c.scpg50);
  row("SCPG-Max", c.scpg_max);
  t.print(std::cout);
  std::cout << "  clock speed-up (SCPG-Max vs NoPG):   "
            << TextTable::num(c.speedup_max(), 1) << "x   [paper: ~"
            << TextTable::num(paper_speedup, 0) << "x]\n";
  std::cout << "  energy efficiency gain (SCPG-Max):   "
            << TextTable::num(c.energy_gain_max(), 1) << "x   [paper: ~"
            << TextTable::num(paper_energy_gain, 1) << "x]\n";
  std::cout << "  (the paper quotes ratios between TABLE rows — decade "
               "frequency steps — which quantises the no-gating point "
               "down and inflates the headline factor; the continuous "
               "solve above is the like-for-like number)\n\n";
}

} // namespace

int main() {
  std::cout << "=== Energy-harvester budget scenarios (paper §III-A, "
               "§III-B) ===\n\n";

  {
    MultSetup s = make_mult_setup();
    // Paper: 30 uW vs a 29.23 uW floor -> 2.6% margin.
    const Power floor = s.model_original.average_power_ungated(1.0_kHz);
    const BudgetComparison c =
        compare_at_budget(s.model_original, s.model_gated, floor * 1.026,
                          1.0_kHz, 40.0_MHz, /*jobs=*/0);
    report("S3: 16-bit multiplier (paper: 30 uW harvester)", c, 50.0, 45.0);

    // Paper-style lookup against the Table I frequency grid: pick the
    // fastest row whose power fits the budget.
    const double rows_mhz[] = {0.01, 0.1, 1, 2, 5, 8, 10, 14.3};
    auto pick = [&](GatingMode mode) {
      double best = rows_mhz[0];
      for (double fm : rows_mhz) {
        const Frequency f{fm * 1e6};
        const ScpgPowerModel& mm =
            mode == GatingMode::None ? s.model_original : s.model_gated;
        if (mm.average_power(mode, f).v <= (floor * 1.026).v) best = fm;
      }
      return best;
    };
    const double f_none = pick(GatingMode::None);
    const double f_max = pick(GatingMode::ScpgMax);
    std::cout << "  paper-style Table-I row lookup: NoPG row "
              << TextTable::num(f_none, 2) << " MHz vs SCPG-Max row "
              << TextTable::num(f_max, 2) << " MHz -> "
              << TextTable::num(f_max / f_none, 0)
              << "x   [paper: 100 kHz vs ~5 MHz -> 50x]\n\n";
  }
  {
    CpuSetup s = make_cpu_setup();
    // Paper: 250 uW vs a 243.65 uW floor -> 2.6% margin.
    const Power floor = s.model_original.average_power_ungated(1.0_kHz);
    const BudgetComparison c =
        compare_at_budget(s.model_original, s.model_gated, floor * 1.026,
                          1.0_kHz, 20.0_MHz, /*jobs=*/0);
    report("S4: SCM0 (paper: 250 uW harvester)", c, 2.0, 2.5);
  }
  return 0;
}
