// Reproduces paper Fig 7: switching probability of the SCM0 for each
// group of 10 vectors of the Dhrystone-like benchmark, following the
// paper's methodology — functional simulation dumps activity (their
// Modelsim/VCD step), grouped per 10 cycles, and the min/avg/max groups
// are selected as the representative vectors for detailed power
// simulation (their HSpice step).
#include <iostream>

#include "common.hpp"
#include "netlist/funcsim.hpp"

using namespace scpg;
using namespace scpg::benchx;

int main() {
  std::cout << "=== Fig 7: SCM0 switching probability per 10-cycle vector "
               "group, Dhrystone-like ===\n\n";
  const Library& lib = bench_lib();
  // ~3700 executed cycles, like the paper's 3700-vector benchmark.
  const auto image = cpu::assemble(cpu::workloads::dhrystone_like(17));
  cpu::Scm0 core = cpu::make_scm0(lib, image);

  FuncSim fs(core.netlist);
  fs.reset();
  fs.set_input("clk", Logic::L0);
  fs.set_input("rst_n", Logic::L1);
  fs.eval();

  ActivityRecorder rec(core.netlist, 10);
  int cycles = 0;
  while (fs.output("halted") != Logic::L1 && cycles < 5000) {
    fs.clock();
    // FuncSim reports settled toggles per cycle; feed the recorder as a
    // lump (per-net resolution is not needed for Fig 7).
    for (std::size_t i = 0; i < fs.toggles_last_cycle(); ++i)
      rec.on_toggle(NetId{0});
    rec.on_cycle();
    ++cycles;
  }
  std::cout << "executed " << cycles << " cycles, "
            << rec.window_activity().size() << " vector groups of 10\n\n";

  const auto& w = rec.window_activity();
  std::vector<double> xs(w.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = double(i);
  AsciiChart chart("switching probability vs vector group");
  chart.series("activity", xs, w);
  chart.print(std::cout);

  const auto reps = rec.representatives();
  std::cout << "\nrepresentative groups (paper methodology: min/avg/max "
               "feed the detailed power simulation):\n";
  TextTable t;
  t.header({"group", "kind", "switching probability"});
  t.row({std::to_string(reps.min_group), "min",
         TextTable::num(w[reps.min_group], 4)});
  t.row({std::to_string(reps.avg_group), "avg",
         TextTable::num(w[reps.avg_group], 4)});
  t.row({std::to_string(reps.max_group), "max",
         TextTable::num(w[reps.max_group], 4)});
  t.print(std::cout);

  std::cout << "\nwhole-run average activity: "
            << TextTable::num(rec.average_activity(), 4)
            << " toggles/net/cycle  [paper Fig 7 band: ~0.05 .. 0.65]\n";
  return 0;
}
