// Fault-injection campaign: injected-fault rate vs detected/escaped
// hazards on the two case studies (16-bit multiplier, SCM0).
//
// For each fault class of src/verify/fault.hpp the bench sweeps the
// injection intensity and reports how many fault instances went in, how
// many hazard reports the runtime monitors produced, and whether the
// campaign was detected at all.  SEU flips are individually countable, so
// their row also reports escaped (injected but unreported) flips — the
// monitors' miss rate, which must be zero for mid-cycle upsets.
//
// The first row of each design is the fault-free control: a correct SCPG
// netlist must come back with zero hazards or every other row is noise.
#include <iostream>

#include "common.hpp"
#include "verify/campaign.hpp"

using namespace scpg;
using namespace scpg::benchx;

namespace {

struct Sweep {
  const char* design;
  const Netlist* nl;
  SimConfig cfg;
  int cycles;
  std::vector<double> rates;
};

std::string top_kinds(const verify::HazardLog& log) {
  std::string s;
  for (int i = 0; i < verify::kNumHazardKinds; ++i) {
    const auto k = static_cast<verify::HazardKind>(i);
    if (log.count(k) == 0) continue;
    if (!s.empty()) s += '+';
    s += verify::hazard_kind_name(k);
  }
  return s.empty() ? "-" : s;
}

void run_sweep(const Sweep& sw, TextTable& t) {
  verify::CampaignOptions base;
  base.f = 1_MHz;
  base.cycles = sw.cycles;
  base.sim = sw.cfg;
  base.seed = 17;

  // Flatten the campaign grid (control + fault classes x rates); every
  // campaign is an independent simulation, so they run as parallel jobs.
  struct Campaign {
    verify::CampaignOptions opt;
    bool control;
    verify::FaultClass fc;
    double rate;
  };
  std::vector<Campaign> grid;
  grid.push_back({base, true, verify::FaultClass{}, 0.0});
  for (int fi = 0; fi < verify::kNumFaultClasses; ++fi) {
    const auto fc = static_cast<verify::FaultClass>(fi);
    for (double rate : sw.rates) {
      verify::CampaignOptions opt = base;
      opt.faults.push_back({fc, rate, 0.0});
      grid.push_back({std::move(opt), false, fc, rate});
    }
  }

  const auto rows = parallel_map(grid.size(), 0, [&](std::size_t i) {
    const Campaign& c = grid[i];
    const verify::CampaignResult res = verify::run_campaign(*sw.nl, c.opt);
    if (c.control)
      return std::vector<std::string>{
          sw.design, "(none)", "-", "0",
          std::to_string(res.hazards.total()), top_kinds(res.hazards),
          res.detected() ? "FALSE ALARM" : "clean"};
    const int injected = res.injected[std::size_t(c.fc)];
    std::string verdict = res.detected() ? "detected" : "ESCAPED";
    if (c.fc == verify::FaultClass::SeuFlip) {
      const auto hit =
          res.hazards.count(verify::HazardKind::SpuriousStateFlip);
      const long escaped = std::max<long>(0, long(injected) - long(hit));
      verdict = escaped == 0 ? "detected"
                             : std::to_string(escaped) + " escaped";
    }
    return std::vector<std::string>{
        sw.design, std::string(verify::fault_class_name(c.fc)),
        TextTable::num(c.rate, 2), std::to_string(injected),
        std::to_string(res.hazards.total()), top_kinds(res.hazards),
        verdict};
  });
  for (const auto& row : rows) t.row(row);
}

} // namespace

int main() {
  std::cout << "=== fault-injection campaign: monitors vs injected faults "
               "===\n\n";

  MultSetup mult = make_mult_setup();
  CpuSetup cpu = make_cpu_setup();

  TextTable t("1 MHz campaigns, seed 17; hazards = monitor reports");
  t.header({"design", "fault", "rate", "injected", "hazards", "kinds",
            "verdict"});
  run_sweep({"mult16", &mult.gated, mult.cfg, 30, {0.25, 0.5, 1.0}}, t);
  run_sweep({"scm0", &cpu.gated.netlist, cpu.cfg, 20, {0.5, 1.0}}, t);
  t.print(std::cout);

  std::cout << "\nSEU rows count escaped flips individually; structural "
               "rows are detected when any monitor fires.\n";
  return 0;
}
