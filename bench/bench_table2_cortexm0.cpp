// Reproduces paper Table II: power and energy per operation of the
// sub-clock power gated SCM0 microcontroller (Cortex-M0 substitute)
// running the Dhrystone-like workload at VDD = 0.6 V.
#include <iostream>

#include "common.hpp"

using namespace scpg;
using namespace scpg::benchx;

int main() {
  std::cout << "=== Table II: SCM0 (Cortex-M0 substitute), VDD = 0.6 V, "
               "Dhrystone-like workload ===\n\n";
  CpuSetup s = make_cpu_setup();
  std::cout << "designs: original " << s.original.netlist.num_cells()
            << " cells, SCPG " << s.gated.netlist.num_cells() << " cells ("
            << s.info.cells_gated << " gated, " << s.info.isolation_cells
            << " isolation)\n";
  std::cout << "dynamic energy/cycle (measured): "
            << TextTable::num(in_pJ(s.e_dyn_gated), 2) << " pJ\n\n";

  const double paper_saving_50[] = {28.1, 26.7, 13.0, 1.3, -2.7, -12.0};
  const double paper_saving_max[] = {57.1, 55.3, 38.1, 20.8, 1.9, -11.0};
  const double freqs_mhz[] = {0.01, 0.1, 1.0, 2.0, 5.0, 10.0};

  // All 6 frequencies x 3 modes run as one parallel engine sweep.
  const std::vector<TableRow> rows =
      measure_rows(s.original.netlist, s.gated.netlist, s.model_gated,
                   cpu_spec(s.cfg), freqs_mhz);
  print_rows("Table II (measured; duty = SCPG-Max clock-high fraction)",
             rows);

  std::cout << "\npaper-vs-measured savings (SCPG @50% / SCPG-Max):\n";
  TextTable cmp;
  cmp.header({"Clock", "paper 50%", "ours 50%", "paper Max", "ours Max"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    cmp.row({TextTable::num(in_MHz(rows[i].f),
                            in_MHz(rows[i].f) < 0.1 ? 3 : 2) +
                 " MHz",
             TextTable::num(paper_saving_50[i], 1) + "%",
             TextTable::num(rows[i].saving_50(), 1) + "%",
             TextTable::num(paper_saving_max[i], 1) + "%",
             TextTable::num(rows[i].saving_max(), 1) + "%"});
  }
  cmp.print(std::cout);
  std::cout << "\n(paper Table II absolute anchor: 243.65 uW no-PG at"
               " 10 kHz; our SCM0 is ~2.5x smaller than the 6747-gate M0,"
               " so absolute power scales accordingly — see"
               " EXPERIMENTS.md)\n";
  return 0;
}
