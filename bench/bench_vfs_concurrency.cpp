// The paper's central positioning claim: SCPG "works concurrently with
// voltage and frequency scaling" (§II) — voltage scaling cuts dynamic
// power quadratically, frequency scaling cuts it linearly, and SCPG then
// removes the leakage of the idle time those two create.
//
// This bench sweeps the (VDD, f) plane for the 16-bit multiplier and
// reports, at each corner, the no-gating power and the SCPG-Max saving —
// showing that the saving GROWS as VFS gets more aggressive (more idle
// time per cycle, leakage a larger share).
#include <iostream>

#include "common.hpp"

using namespace scpg;
using namespace scpg::benchx;

int main() {
  std::cout << "=== SCPG x voltage/frequency scaling (16-bit multiplier) "
               "===\n\n";
  const Library& lib = bench_lib();

  TextTable t("SCPG-Max saving over no gating, by corner (n/a = SCPG "
              "infeasible: T_eval too close to the period)");
  t.header({"VDD", "f = 10 kHz", "100 kHz", "1 MHz", "5 MHz", "NoPG floor"});

  // The five VDD corners are independent (each builds its own netlists
  // and calibrates at its own corner), so they run as parallel jobs.
  const std::vector<double> vdds = {0.9, 0.8, 0.7, 0.6, 0.5};
  const auto corner_rows =
      parallel_map(vdds.size(), 0, [&](std::size_t vi) {
        const double vdd = vdds[vi];
        SimConfig cfg;
        cfg.corner = {Voltage{vdd}, 25.0};
        Netlist original = gen::make_multiplier(lib, 16);
        Netlist gated = gen::make_multiplier(lib, 16);
        apply_scpg(gated);

        // Calibrate dynamic energy at this corner through the engine.
        engine::SweepSpec spec = mult_spec(cfg, 16);
        spec.design(gated).frequency(1.0_MHz).override_gating(true).jobs(1);
        const engine::PointResult cal =
            engine::Experiment(std::move(spec)).run()[0];
        const Energy e_dyn{cal.tally.dynamic_total().v / 16.0};
        const ScpgPowerModel model =
            ScpgPowerModel::extract(gated, cfg, e_dyn);
        const ScpgPowerModel model0 =
            ScpgPowerModel::extract(original, cfg, e_dyn);

        std::vector<std::string> row;
        row.push_back(TextTable::num(vdd, 1) + " V");
        for (double fm : {0.01, 0.1, 1.0, 5.0}) {
          const Frequency f{fm * 1e6};
          const auto duty = model.duty_for(GatingMode::ScpgMax, f);
          if (!duty) {
            row.push_back("n/a");
            continue;
          }
          const double saving =
              100.0 * (1.0 - model.average_power_gated(f, *duty).v /
                                 model0.average_power_ungated(f).v);
          row.push_back(TextTable::num(saving, 1) + "%");
        }
        row.push_back(TextTable::num(
                          in_uW(model0.average_power_ungated(1.0_kHz)), 1) +
                      " uW");
        return row;
      });
  for (const auto& row : corner_rows) t.row(row);
  t.print(std::cout);

  std::cout <<
      "\nobservations (matching the paper's §II argument):\n"
      "  * voltage scaling alone shrinks the leakage floor ~5x across the\n"
      "    sweep, yet the floor still dominates at harvester-class\n"
      "    frequencies — frequency scaling cannot remove it;\n"
      "  * SCPG composes with VFS: at every corner it still strips\n"
      "    ~75% of the remaining power at 10 kHz, so the two techniques\n"
      "    multiply rather than compete;\n"
      "  * toward high frequency the saving shrinks (gating overhead per\n"
      "    cycle) — SCPG complements VFS in the scaled-down regime the\n"
      "    paper targets, it does not replace it at speed.\n";
  return 0;
}
