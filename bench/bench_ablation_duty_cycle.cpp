// Ablation A2: how the clock duty cycle drives the SCPG saving — the
// mechanism behind the paper's SCPG-Max columns.
//
//  * at low frequency, raising the clock-high fraction gates the logic
//    longer and converges to the always-on leakage floor;
//  * the feasibility limit duty_max(f) = 1 - (T_PGStart + T_eval +
//    T_setup)/T shrinks with frequency and crosses 50% near 14 MHz for
//    the multiplier (why the paper's SCPG column stops at 14.3 MHz);
//  * below Fmax/2 the optimal duty is ABOVE 50%, near Fmax it drops
//    BELOW 50% (the paper's "decreasing the duty cycle" case).
#include <iostream>

#include "common.hpp"

using namespace scpg;
using namespace scpg::benchx;

int main() {
  std::cout << "=== A2: duty-cycle sweep (16-bit multiplier) ===\n\n";
  MultSetup s = make_mult_setup();

  std::cout << "measured power vs clock-high fraction at 100 kHz:\n";
  const Frequency f = 100.0_kHz;

  // The no-PG reference and every feasible duty run as one parallel
  // engine sweep.
  engine::SweepSpec spec = mult_spec(s.cfg);
  spec.design(s.original).design(s.gated).jobs(0);
  auto pt = [&](std::size_t design, double duty, std::string tag) {
    engine::OperatingPoint p;
    p.design = design;
    p.f = f;
    p.duty_high = duty;
    p.corner = s.cfg.corner;
    p.tag = std::move(tag);
    return p;
  };
  spec.point(pt(0, 0.5, "none"));
  std::vector<double> duties;
  for (double duty : {0.10, 0.25, 0.50, 0.75, 0.90, 0.97}) {
    if (!s.model_gated.feasible(f, duty)) continue;
    duties.push_back(duty);
    spec.point(pt(1, duty, "d:" + std::to_string(duties.size() - 1)));
  }
  const engine::SweepResult res = engine::Experiment(std::move(spec)).run();

  TextTable t;
  t.header({"duty high", "power uW", "model uW", "vs NoPG"});
  const double p_none = in_uW(res.at_tag("none").avg_power);
  for (std::size_t i = 0; i < duties.size(); ++i) {
    const double duty = duties[i];
    const double p =
        in_uW(res.at_tag("d:" + std::to_string(i)).avg_power);
    const double pm =
        in_uW(s.model_gated.average_power_gated(f, duty));
    t.row({TextTable::num(100.0 * duty, 0) + "%", TextTable::num(p, 2),
           TextTable::num(pm, 2),
           "-" + TextTable::num(100.0 * (1.0 - p / p_none), 1) + "%"});
  }
  t.print(std::cout);

  std::cout << "\nfeasible duty limit vs frequency (T_low must fit "
               "T_PGStart + T_eval + T_setup):\n";
  TextTable d;
  d.header({"Clock", "duty_max", "SCPG@50% feasible", "SCPG-Max duty"});
  for (double fm : {0.01, 0.1, 1.0, 5.0, 10.0, 14.3, 20.0, 28.0}) {
    const Frequency fq{fm * 1e6};
    const double dmax = s.model_gated.max_duty_high(fq);
    const auto d50 = s.model_gated.duty_for(GatingMode::Scpg50, fq);
    const auto dm = s.model_gated.duty_for(GatingMode::ScpgMax, fq);
    d.row({TextTable::num(fm, 2) + " MHz",
           TextTable::num(100.0 * dmax, 1) + "%",
           d50 ? "yes" : "no",
           dm ? TextTable::num(100.0 * *dm, 1) + "%" : "infeasible"});
  }
  d.print(std::cout);

  std::cout << "\npaper anchors: SCPG-Max saving at 10 kHz rises from "
               "39.9% (50% duty) to 80.2% (max duty); at 14.3 MHz both "
               "collapse to 3.3% as duty_max approaches 50%.\n";
  return 0;
}
