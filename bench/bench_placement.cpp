// Design Planning study (paper Fig 5, the step between the SCPG transform
// and CTS/routing): "it is recommended that the combinational logic
// domain is located in the center of the design to alleviate problems
// with routing congestion between the combinational logic and the
// sequential logic domains."
//
// This bench places the SCPG'd multiplier two ways — domain-oblivious vs
// centre-clustered — derives routing capacitance from the wire lengths,
// and re-runs timing and power on the annotated netlist.
#include <iostream>

#include "common.hpp"
#include "place/placement.hpp"
#include "sta/sta.hpp"

using namespace scpg;
using namespace scpg::benchx;

namespace {

struct Result {
  double hpwl_mm;
  double crossing_mm;
  double bbox_frac;
  double t_eval_ns;
  double p_uw;
};

Result evaluate(Netlist& nl, SimConfig cfg, DomainStrategy strategy) {
  PlaceOptions opt;
  opt.strategy = strategy;
  opt.passes = 20;
  const Placement p = place(nl, opt);
  apply_wire_caps(nl, p);
  Result r;
  r.hpwl_mm = p.hpwl_um / 1e3;
  r.crossing_mm = crossing_hpwl_um(nl, p) / 1e3;
  r.bbox_frac = gated_bbox_area_um2(nl, p) / (p.width_um * p.height_um);
  r.t_eval_ns = in_ns(run_sta(nl, cfg.corner).t_eval);
  r.p_uw = in_uW(measure_mult(nl, cfg, 1.0_MHz, 0.5, false).avg_power);
  nl.clear_net_wire_caps();
  return r;
}

} // namespace

int main() {
  std::cout << "=== Design Planning: gated-domain placement (SCPG'd 16-bit "
               "multiplier) ===\n\n";
  MultSetup s = make_mult_setup();

  // evaluate() annotates wire caps on its netlist, so each strategy gets
  // its own copy and the two placements run as parallel jobs.
  const DomainStrategy strategies[] = {DomainStrategy::Ignore,
                                       DomainStrategy::CenterGated};
  std::vector<Netlist> copies;
  copies.push_back(s.gated);
  copies.push_back(s.gated);
  const auto results = parallel_map(2, 0, [&](std::size_t i) {
    return evaluate(copies[i], s.cfg, strategies[i]);
  });
  const Result& mixed = results[0];
  const Result& center = results[1];

  TextTable t("placement-annotated results (wire caps from HPWL, "
              "0.18 fF/um)");
  t.header({"metric", "oblivious", "centre-clustered (paper)"});
  t.row({"total wirelength", TextTable::num(mixed.hpwl_mm, 2) + " mm",
         TextTable::num(center.hpwl_mm, 2) + " mm"});
  t.row({"domain-crossing wirelength",
         TextTable::num(mixed.crossing_mm, 3) + " mm",
         TextTable::num(center.crossing_mm, 3) + " mm"});
  t.row({"gated-domain bbox / core",
         TextTable::num(100.0 * mixed.bbox_frac, 0) + "%",
         TextTable::num(100.0 * center.bbox_frac, 0) + "%"});
  t.row({"T_eval @0.6 V", TextTable::num(mixed.t_eval_ns, 1) + " ns",
         TextTable::num(center.t_eval_ns, 1) + " ns"});
  t.row({"SCPG power @1 MHz", TextTable::num(mixed.p_uw, 2) + " uW",
         TextTable::num(center.p_uw, 2) + " uW"});
  t.print(std::cout);

  std::cout <<
      "\nreading the table:\n"
      "  * the oblivious placement smears the gated domain across the\n"
      "    whole core (bbox ~ the full die): the virtual rail and header\n"
      "    bank must span everything and the domain boundary threads\n"
      "    through every channel — the congestion the paper warns about;\n"
      "  * centre-clustering contains the domain (the multiplier is ~93%\n"
      "    gated cells, so the floor is its own area) and, as a bonus,\n"
      "    the cluster seed even helps the optimiser: shorter wires,\n"
      "    faster T_eval, slightly lower power — the paper's Design\n"
      "    Planning recommendation, quantified.\n";
  return 0;
}
