// Ablation A1: the paper's adaptive isolation controller (Fig 3) vs a
// naive clock-only release, vs no isolation at all.
//
//  * adaptive (paper): NISO = !clk & rail_sense — isolation releases only
//    when the virtual rail is back up;
//  * clock-only: NISO = !clk — releases at the falling edge even if the
//    rail is still ramping (safe only when T_PGStart is negligible);
//  * none: domain outputs float into the always-on logic while gated,
//    burning short-circuit power in every receiver (and corrupting
//    registers at higher frequencies).
#include <iostream>

#include "common.hpp"

using namespace scpg;
using namespace scpg::benchx;

namespace {

Netlist build_mult(bool isolation, bool adaptive) {
  Netlist nl = gen::make_multiplier(bench_lib(), 16);
  ScpgOptions opt;
  opt.insert_isolation = isolation;
  opt.adaptive_controller = adaptive;
  apply_scpg(nl, opt);
  return nl;
}

} // namespace

int main() {
  std::cout << "=== A1: isolation strategy ablation (16-bit multiplier, "
               "SCPG @50%) ===\n\n";
  MultSetup base = make_mult_setup();
  Netlist adaptive = build_mult(true, true);
  Netlist clock_only = build_mult(true, false);
  Netlist none = build_mult(false, true);

  // 3 isolation strategies x 4 frequencies: one parallel engine sweep
  // (row order: design-major).
  const std::vector<double> fs_mhz = {0.01, 0.1, 1.0, 5.0};
  std::vector<Frequency> fs;
  for (double fm : fs_mhz) fs.push_back(Frequency{fm * 1e6});
  engine::SweepSpec spec = mult_spec(base.cfg);
  spec.design(adaptive, "adaptive")
      .design(clock_only, "clk-only")
      .design(none, "no-iso")
      .frequencies(fs)
      .jobs(0);
  const engine::SweepResult res = engine::Experiment(std::move(spec)).run();

  TextTable t;
  t.header({"Clock", "adaptive uW", "clk-only uW", "no-iso uW",
            "no-iso penalty"});
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const double pa = in_uW(res[0 * fs.size() + i].avg_power);
    const double pc = in_uW(res[1 * fs.size() + i].avg_power);
    const double pn = in_uW(res[2 * fs.size() + i].avg_power);
    t.row({TextTable::num(fs_mhz[i], 2) + " MHz", TextTable::num(pa, 2),
           TextTable::num(pc, 2), TextTable::num(pn, 2),
           "+" + TextTable::num(100.0 * (pn / pa - 1.0), 1) + "%"});
  }
  t.print(std::cout);

  std::cout
      << "\nwithout isolation the collapsed domain's X outputs sit mid-rail "
         "on every register input, multiplying receiver leakage — the "
         "power cost the paper's clamps exist to avoid.\n";
  std::cout << "the clock-only controller matches the adaptive one here "
               "because T_PGStart (~1 ns) is tiny at these frequencies; "
               "the adaptive sense is what makes the release safe at any "
               "frequency and rail load.\n";

  // Functional check: the adaptive controller never lets X reach a
  // register; without isolation X is visible on register inputs during
  // the gated phase (demonstrated in tests/test_scpg.cpp as well).
  Simulator sim(none, base.cfg);
  sim.init_flops_to_zero();
  sim.drive_at(0, none.port_net("override_n"), Logic::L1);
  const Frequency f = 100.0_kHz;
  const SimTime T = to_fs(period(f));
  sim.add_clock(none.port_net("clk"), f, 0.5, T / 2);
  sim.drive_bus_at(0, "a", 1234, 16);
  sim.drive_bus_at(0, "b", 567, 16);
  sim.run_until(T * 4 + T / 2 + (3 * T) / 8);
  int x_inputs = 0;
  for (CellId ff : none.flops())
    if (!is_known(sim.value(none.cell(ff).inputs[0]))) ++x_inputs;
  std::cout << "\nmid-gated-phase X on register inputs without isolation: "
            << x_inputs << " of " << none.flops().size() << " flops\n";
  return 0;
}
