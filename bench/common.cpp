#include "common.hpp"

#include <iomanip>
#include <iostream>

namespace scpg::benchx {

namespace {

Energy calibrate_dyn(const Netlist& nl, SimConfig cfg,
                     const std::function<void(Simulator&, int)>& stim,
                     const std::function<void(Simulator&)>& setup,
                     int cycles) {
  MeasureOptions mo;
  mo.f = 1.0_MHz;
  mo.sim = cfg;
  mo.cycles = cycles;
  mo.override_gating = true;
  mo.stimulus = stim;
  mo.setup = setup;
  const MeasureResult r = measure_average_power(nl, mo);
  return Energy{r.tally.dynamic_total().v / double(r.cycles)};
}

std::function<void(Simulator&, int)> mult_stimulus() {
  auto rng = std::make_shared<Rng>(0xBEEF);
  return [rng](Simulator& s, int) {
    s.drive_bus_at(s.now() + to_fs(1.0_ns), "a", rng->bits(16), 16);
    s.drive_bus_at(s.now() + to_fs(1.0_ns), "b", rng->bits(16), 16);
  };
}

void cpu_setup_fn(Simulator& s) {
  s.drive_at(0, s.netlist().port_net("rst_n"), Logic::L1);
}

} // namespace

const Library& bench_lib() {
  static const Library l = Library::scpg90();
  return l;
}

MultSetup make_mult_setup() {
  const Library& lib = bench_lib();
  Netlist original = gen::make_multiplier(lib, 16);
  Netlist gated = gen::make_multiplier(lib, 16);
  const ScpgInfo info = apply_scpg(gated);
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  const Energy e_o =
      calibrate_dyn(original, cfg, mult_stimulus(), {}, 24);
  const Energy e_g = calibrate_dyn(gated, cfg, mult_stimulus(), {}, 24);
  ScpgPowerModel mo = ScpgPowerModel::extract(original, cfg, e_o);
  ScpgPowerModel mg = ScpgPowerModel::extract(gated, cfg, e_g);
  return MultSetup{std::move(original), std::move(gated), info, cfg,
                   e_o, e_g, std::move(mo), std::move(mg)};
}

MeasureResult measure_mult(const Netlist& nl, SimConfig cfg, Frequency f,
                           double duty, bool override_gating, int cycles) {
  MeasureOptions mo;
  mo.f = f;
  mo.duty_high = duty;
  mo.sim = cfg;
  mo.cycles = cycles;
  mo.override_gating = override_gating;
  mo.stimulus = mult_stimulus();
  return measure_average_power(nl, mo);
}

CpuSetup make_cpu_setup(int dhrystone_iterations) {
  const Library& lib = bench_lib();
  auto image =
      cpu::assemble(cpu::workloads::dhrystone_like(dhrystone_iterations));
  cpu::Scm0 original = cpu::make_scm0(lib, image);
  cpu::Scm0 gated = cpu::make_scm0(lib, image);
  const ScpgInfo info =
      apply_scpg(gated.netlist, cpu::scm0_scpg_options());
  const SimConfig cfg = cpu::scm0_sim_config();
  const Energy e_o =
      calibrate_dyn(original.netlist, cfg, {}, cpu_setup_fn, 40);
  const Energy e_g = calibrate_dyn(gated.netlist, cfg, {}, cpu_setup_fn, 40);
  ScpgPowerModel mo = ScpgPowerModel::extract(original.netlist, cfg, e_o);
  ScpgPowerModel mg = ScpgPowerModel::extract(gated.netlist, cfg, e_g);
  return CpuSetup{std::move(image), std::move(original), std::move(gated),
                  info, cfg, e_o, e_g, std::move(mo), std::move(mg)};
}

MeasureResult measure_cpu(const Netlist& nl, SimConfig cfg, Frequency f,
                          double duty, bool override_gating, int cycles) {
  MeasureOptions mo;
  mo.f = f;
  mo.duty_high = duty;
  mo.sim = cfg;
  mo.cycles = cycles;
  mo.override_gating = override_gating;
  mo.setup = cpu_setup_fn;
  return measure_average_power(nl, mo);
}

void print_rows(const std::string& title,
                const std::vector<TableRow>& rows) {
  TextTable t(title);
  t.header({"Clock", "NoPG uW", "NoPG pJ", "SCPG uW", "SCPG pJ", "Sav %",
            "Max uW", "Max pJ", "Sav %", "duty"});
  for (const TableRow& r : rows) {
    // '*' marks points where the low phase no longer fits
    // T_PGStart + T_eval + T_setup (run with timing violations, as the
    // paper's highest-frequency rows effectively are).
    const std::string m50 = r.scpg50_feasible ? "" : "*";
    const std::string mmax = r.scpgmax_feasible ? "" : "*";
    t.row({TextTable::num(in_MHz(r.f), in_MHz(r.f) < 0.1 ? 3 : 2) + " MHz",
           TextTable::num(in_uW(r.p_none), 2),
           TextTable::num(in_pJ(r.e_none()), 2),
           TextTable::num(in_uW(r.p_50), 2) + m50,
           TextTable::num(in_pJ(r.e_50()), 2) + m50,
           TextTable::num(r.saving_50(), 1) + m50,
           TextTable::num(in_uW(r.p_max), 2) + mmax,
           TextTable::num(in_pJ(r.e_max()), 2) + mmax,
           TextTable::num(r.saving_max(), 1) + mmax,
           TextTable::num(100.0 * r.duty_max, 0) + "%" + mmax});
  }
  t.print(std::cout);
}

} // namespace scpg::benchx
