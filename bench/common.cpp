#include "common.hpp"

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "util/error.hpp"

namespace scpg::benchx {

namespace {

/// Calibrates dynamic energy/cycle for two builds of a design as one
/// two-point engine sweep (gating overridden off, 1 MHz).
std::pair<Energy, Energy> calibrate_dyn_pair(const Netlist& a,
                                             const Netlist& b,
                                             engine::SweepSpec spec) {
  spec.design(a).design(b).frequency(1.0_MHz).override_gating(true).jobs(0);
  const engine::SweepResult res = engine::Experiment(std::move(spec)).run();
  const auto e = [](const engine::PointResult& r) {
    return Energy{r.tally.dynamic_total().v / double(r.cycles)};
  };
  return {e(res[0]), e(res[1])};
}

} // namespace

const Library& bench_lib() {
  static const Library l = Library::scpg90();
  return l;
}

sim::StimulusSpec mult_stimulus() {
  return sim::StimulusSpec::random_buses({{"a", 16}, {"b", 16}},
                                         kMultStimKey);
}

sim::SetupSpec cpu_setup() {
  return sim::SetupSpec::drives({{"rst_n", Logic::L1}}, kCpuSetupKey);
}

sim::Backend bench_backend() {
  const char* env = std::getenv("SCPG_BACKEND");
  if (env == nullptr || *env == '\0') return sim::Backend::Event;
  const auto b = sim::backend_from_name(env);
  SCPG_REQUIRE(b.has_value(),
               std::string("SCPG_BACKEND must be event, compiled or auto; "
                           "got \"") +
                   env + "\"");
  return *b;
}

engine::SweepSpec mult_spec(SimConfig cfg, int cycles) {
  engine::SweepSpec spec;
  spec.base_sim(cfg).cycles(cycles).stimulus(mult_stimulus());
  spec.backend(bench_backend());
  return spec;
}

engine::SweepSpec cpu_spec(SimConfig cfg, int cycles) {
  engine::SweepSpec spec;
  spec.base_sim(cfg).cycles(cycles).setup(cpu_setup());
  spec.backend(bench_backend());
  return spec;
}

MultSetup make_mult_setup() {
  const Library& lib = bench_lib();
  Netlist original = gen::make_multiplier(lib, 16);
  Netlist gated = gen::make_multiplier(lib, 16);
  const ScpgInfo info = apply_scpg(gated);
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  const auto [e_o, e_g] =
      calibrate_dyn_pair(original, gated, mult_spec(cfg, 24));
  ScpgPowerModel mo = ScpgPowerModel::extract(original, cfg, e_o);
  ScpgPowerModel mg = ScpgPowerModel::extract(gated, cfg, e_g);
  return MultSetup{std::move(original), std::move(gated), info, cfg,
                   e_o, e_g, std::move(mo), std::move(mg)};
}

engine::Measurement measure_mult(const Netlist& nl, SimConfig cfg, Frequency f,
                           double duty, bool override_gating, int cycles) {
  engine::SweepSpec spec = mult_spec(cfg, cycles);
  spec.design(nl).frequency(f).duty(duty).override_gating(override_gating);
  return engine::Experiment(std::move(spec)).run()[0];
}

CpuSetup make_cpu_setup(int dhrystone_iterations) {
  const Library& lib = bench_lib();
  auto image =
      cpu::assemble(cpu::workloads::dhrystone_like(dhrystone_iterations));
  cpu::Scm0 original = cpu::make_scm0(lib, image);
  cpu::Scm0 gated = cpu::make_scm0(lib, image);
  const ScpgInfo info =
      apply_scpg(gated.netlist, cpu::scm0_scpg_options());
  const SimConfig cfg = cpu::scm0_sim_config();
  const auto [e_o, e_g] = calibrate_dyn_pair(original.netlist, gated.netlist,
                                             cpu_spec(cfg, 40));
  ScpgPowerModel mo = ScpgPowerModel::extract(original.netlist, cfg, e_o);
  ScpgPowerModel mg = ScpgPowerModel::extract(gated.netlist, cfg, e_g);
  return CpuSetup{std::move(image), std::move(original), std::move(gated),
                  info, cfg, e_o, e_g, std::move(mo), std::move(mg)};
}

engine::Measurement measure_cpu(const Netlist& nl, SimConfig cfg, Frequency f,
                          double duty, bool override_gating, int cycles) {
  engine::SweepSpec spec = cpu_spec(cfg, cycles);
  spec.design(nl).frequency(f).duty(duty).override_gating(override_gating);
  return engine::Experiment(std::move(spec)).run()[0];
}

std::vector<TableRow> measure_rows(const Netlist& original,
                                   const Netlist& gated,
                                   const ScpgPowerModel& gated_model,
                                   engine::SweepSpec spec,
                                   std::span<const double> freqs_mhz,
                                   int jobs) {
  spec.design(original, "original").design(gated, "gated").jobs(jobs);
  const Corner corner = spec.base_sim().corner;

  std::vector<TableRow> rows(freqs_mhz.size());
  for (std::size_t i = 0; i < freqs_mhz.size(); ++i) {
    const Frequency f{freqs_mhz[i] * 1e6};
    TableRow& r = rows[i];
    r.f = f;
    r.scpg50_feasible =
        gated_model.duty_for(GatingMode::Scpg50, f).has_value();
    const auto dmax = gated_model.duty_for(GatingMode::ScpgMax, f);
    r.scpgmax_feasible = dmax.has_value();
    r.duty_max = dmax.value_or(0.5);

    const std::string n = std::to_string(i);
    auto pt = [&](std::size_t design, double duty, std::string tag) {
      engine::OperatingPoint p;
      p.design = design;
      p.f = f;
      p.duty_high = duty;
      p.corner = corner;
      p.tag = std::move(tag);
      return p;
    };
    spec.point(pt(0, 0.5, "none:" + n));
    spec.point(pt(1, 0.5, "50:" + n));
    if (dmax) spec.point(pt(1, *dmax, "max:" + n));
  }

  const engine::SweepResult res = engine::Experiment(std::move(spec)).run();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::string n = std::to_string(i);
    rows[i].p_none = res.at_tag("none:" + n).avg_power;
    rows[i].p_50 = res.at_tag("50:" + n).avg_power;
    rows[i].p_max = rows[i].scpgmax_feasible
                        ? res.at_tag("max:" + n).avg_power
                        : rows[i].p_50;
  }
  return rows;
}

void print_rows(const std::string& title,
                const std::vector<TableRow>& rows) {
  TextTable t(title);
  t.header({"Clock", "NoPG uW", "NoPG pJ", "SCPG uW", "SCPG pJ", "Sav %",
            "Max uW", "Max pJ", "Sav %", "duty"});
  for (const TableRow& r : rows) {
    // '*' marks points where the low phase no longer fits
    // T_PGStart + T_eval + T_setup (run with timing violations, as the
    // paper's highest-frequency rows effectively are).
    const std::string m50 = r.scpg50_feasible ? "" : "*";
    const std::string mmax = r.scpgmax_feasible ? "" : "*";
    t.row({TextTable::num(in_MHz(r.f), in_MHz(r.f) < 0.1 ? 3 : 2) + " MHz",
           TextTable::num(in_uW(r.p_none), 2),
           TextTable::num(in_pJ(r.e_none()), 2),
           TextTable::num(in_uW(r.p_50), 2) + m50,
           TextTable::num(in_pJ(r.e_50()), 2) + m50,
           TextTable::num(r.saving_50(), 1) + m50,
           TextTable::num(in_uW(r.p_max), 2) + mmax,
           TextTable::num(in_pJ(r.e_max()), 2) + mmax,
           TextTable::num(r.saving_max(), 1) + mmax,
           TextTable::num(100.0 * r.duty_max, 0) + "%" + mmax});
  }
  t.print(std::cout);
}

} // namespace scpg::benchx
