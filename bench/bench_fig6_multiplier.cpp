// Reproduces paper Fig 6(a)/(b): multiplier average power and energy per
// operation vs clock frequency for {No Power Gating, SCPG, SCPG-Max}.
// Dense curves come from the analytic model (cross-validated against the
// simulator, tests/test_cross_validation.cpp); simulator anchor points are
// overlaid at the Table I frequencies.  The convergence point (paper:
// ~15 MHz) is located with the bisection solver.
#include <iostream>

#include "common.hpp"

using namespace scpg;
using namespace scpg::benchx;

int main() {
  std::cout << "=== Fig 6: 16-bit multiplier, VDD = 0.6 V ===\n\n";
  MultSetup s = make_mult_setup();

  std::vector<double> fs, p_none, p_50, p_max, e_none, e_50, e_max;
  for (double fm = 0.05; fm <= 15.0; fm += 0.05) {
    const Frequency f{fm * 1e6};
    fs.push_back(fm);
    const Power pn = s.model_original.average_power_ungated(f);
    const Power p5 = s.model_gated.average_power(GatingMode::Scpg50, f);
    const Power pm = s.model_gated.average_power(GatingMode::ScpgMax, f);
    p_none.push_back(in_uW(pn));
    p_50.push_back(in_uW(p5));
    p_max.push_back(in_uW(pm));
    e_none.push_back(in_pJ(Energy{pn.v / f.v}));
    e_50.push_back(in_pJ(Energy{p5.v / f.v}));
    e_max.push_back(in_pJ(Energy{pm.v / f.v}));
  }

  AsciiChart power("Fig 6(a): avg power per cycle / uW  vs  clock / MHz");
  power.series("No Power Gating", fs, p_none);
  power.series("SCPG", fs, p_50);
  power.series("SCPG-Max", fs, p_max);
  power.print(std::cout);

  AsciiChart energy("Fig 6(b): energy per operation / pJ  vs  clock / MHz");
  energy.log_y(true);
  energy.series("No Power Gating", fs, e_none);
  energy.series("SCPG", fs, e_50);
  energy.series("SCPG-Max", fs, e_max);
  energy.print(std::cout);

  const Frequency conv = convergence_frequency(
      s.model_gated, GatingMode::Scpg50, 100.0_kHz, 40.0_MHz);
  std::cout << "\nconvergence point (SCPG stops saving): "
            << TextTable::num(in_MHz(conv), 1)
            << " MHz   [paper Fig 6(a): ~15 MHz]\n\n";

  // Simulator anchors at the Table I frequencies: both designs at every
  // anchor, one parallel engine sweep (row order: design-major).
  const std::vector<double> anchors_mhz = {0.01, 0.1, 1.0, 5.0, 10.0, 14.3};
  std::vector<Frequency> anchor_fs;
  for (double fm : anchors_mhz) anchor_fs.push_back(Frequency{fm * 1e6});
  engine::SweepSpec spec = mult_spec(s.cfg);
  spec.design(s.original).design(s.gated).frequencies(anchor_fs).jobs(0);
  const engine::SweepResult anchors =
      engine::Experiment(std::move(spec)).run();

  TextTable t("simulator anchor points (uW)");
  t.header({"Clock MHz", "NoPG sim", "NoPG model", "SCPG sim",
            "SCPG model"});
  for (std::size_t i = 0; i < anchors_mhz.size(); ++i) {
    const Frequency f = anchor_fs[i];
    const double sim_n = in_uW(anchors[i].avg_power);
    const double sim_g = in_uW(anchors[anchors_mhz.size() + i].avg_power);
    t.row({TextTable::num(anchors_mhz[i], 2),
           TextTable::num(sim_n, 2),
           TextTable::num(in_uW(s.model_original.average_power_ungated(f)),
                          2),
           TextTable::num(sim_g, 2),
           TextTable::num(
               in_uW(s.model_gated.average_power(GatingMode::Scpg50, f)),
               2)});
  }
  t.print(std::cout);

  std::cout << "\nCSV (frequency_mhz,p_none_uw,p_scpg_uw,p_scpgmax_uw,"
               "e_none_pj,e_scpg_pj,e_scpgmax_pj)\n";
  TextTable csv;
  csv.header({"f", "pn", "p5", "pm", "en", "e5", "em"});
  for (std::size_t i = 0; i < fs.size(); i += 10)
    csv.row({TextTable::num(fs[i], 2), TextTable::num(p_none[i], 3),
             TextTable::num(p_50[i], 3), TextTable::num(p_max[i], 3),
             TextTable::num(e_none[i], 3), TextTable::num(e_50[i], 3),
             TextTable::num(e_max[i], 3)});
  csv.print_csv(std::cout);
  return 0;
}
