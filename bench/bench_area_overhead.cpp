// Reproduces the paper's area-overhead results (S2): the SCPG fabric
// (headers, isolation cells, boundary buffers, controller) costs ~3.9% of
// the multiplier and ~6.6% of the Cortex-M0.
#include <iostream>

#include "common.hpp"
#include "netlist/report.hpp"

using namespace scpg;
using namespace scpg::benchx;

namespace {

void report(const std::string& title, const Netlist& original,
            const Netlist& gated, const ScpgInfo& info,
            double paper_overhead_pct) {
  std::cout << title << "\n";
  print_stats(compute_stats(original), std::cout, "  original:");
  print_stats(compute_stats(gated), std::cout, "  with SCPG:");
  TextTable t;
  t.header({"", "cells", "area um2"});
  t.row({"original", std::to_string(original.num_cells()),
         TextTable::num(in_um2(info.area_before), 0)});
  t.row({"with SCPG", std::to_string(gated.num_cells()),
         TextTable::num(in_um2(info.area_after), 0)});
  t.print(std::cout);
  std::cout << "  fabric: " << info.isolation_cells << " isolation + "
            << info.buffer_cells << " buffers + " << info.headers.size()
            << " headers + controller\n";
  std::cout << "  area overhead: "
            << TextTable::num(100.0 * info.area_overhead(), 1)
            << "%   [paper: " << TextTable::num(paper_overhead_pct, 1)
            << "%]\n\n";
}

} // namespace

int main() {
  std::cout << "=== S2: SCPG area overhead ===\n\n";
  MultSetup m = make_mult_setup();
  report("16-bit multiplier", m.original, m.gated, m.info, 3.9);
  CpuSetup c = make_cpu_setup();
  report("SCM0 (Cortex-M0 substitute)", c.original.netlist, c.gated.netlist,
         c.info, 6.6);
  std::cout << "note: the SCM0 overhead exceeds the paper's 6.6% because "
               "our core is ~2.5x smaller than the 6747-gate M0 while its "
               "register interface (isolation per flop input) is "
               "comparable — see EXPERIMENTS.md.\n";
  return 0;
}
