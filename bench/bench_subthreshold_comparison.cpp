// Reproduces the paper's §IV comparison (S5): operate the sub-threshold
// design at its minimum energy point, take its average power as the power
// budget, and ask what SCPG achieves inside the same budget.  The paper's
// result: sub-threshold wins on energy (~5x for the multiplier, ~4.8x for
// the M0) at ~5x lower performance — SCPG trades energy for a much wider
// performance range (and the override gives instant full speed).
#include <iostream>

#include "common.hpp"
#include "util/error.hpp"

using namespace scpg;
using namespace scpg::benchx;

namespace {

void compare(const std::string& title, const ScpgPowerModel& gated,
             const MepResult& mep, Frequency f_hi, double paper_perf,
             double paper_energy) {
  const Power budget = mep.minimum.power();
  std::cout << title << "\n  sub-threshold MEP: "
            << TextTable::num(in_mV(mep.minimum.vdd), 0) << " mV, "
            << TextTable::num(in_MHz(mep.minimum.fmax), 1) << " MHz, "
            << TextTable::num(in_pJ(mep.minimum.e_total()), 2) << " pJ/op, "
            << TextTable::num(in_uW(budget), 1) << " uW\n";
  try {
    const Frequency f = max_frequency_for_budget(gated, GatingMode::ScpgMax,
                                                 budget, 1.0_kHz, f_hi);
    const Energy e = gated.energy_per_op(GatingMode::ScpgMax, f);
    std::cout << "  SCPG-Max at the same budget: "
              << TextTable::num(in_MHz(f), 2) << " MHz, "
              << TextTable::num(in_pJ(e), 2) << " pJ/op\n";
    std::cout << "  sub-threshold advantage: "
              << TextTable::num(mep.minimum.fmax.v / f.v, 1)
              << "x performance [paper ~" << TextTable::num(paper_perf, 0)
              << "x], " << TextTable::num(e.v / mep.minimum.e_total().v, 1)
              << "x energy [paper ~" << TextTable::num(paper_energy, 1)
              << "x]\n";
    const Power floor = gated.average_power(GatingMode::ScpgMax, 1.0_kHz);
    if (budget.v < floor.v * 1.2)
      std::cout << "  (note: the MEP budget sits only "
                << TextTable::num(100.0 * (budget.v / floor.v - 1.0), 0)
                << "% above the SCPG leakage floor, so this ratio is very "
                   "sensitive; the paper's M0 budget had ~2.8x headroom — "
                   "see EXPERIMENTS.md)\n";
  } catch (const InfeasibleError&) {
    std::cout << "  SCPG cannot meet the MEP power budget (leakage floor "
                 "above budget)\n";
  }
  std::cout << "  ...but SCPG runs above threshold (stable) and the "
               "override allows bursts to full speed.\n\n";
}

} // namespace

int main() {
  std::cout << "=== §IV: sub-threshold vs sub-clock power gating (S5) "
               "===\n\n";
  MepOptions opt;
  opt.jobs = 0;
  {
    MultSetup s = make_mult_setup();
    const MepResult mep =
        analyze_mep(s.original, s.e_dyn_original, s.cfg.corner, opt);
    compare("multiplier", s.model_gated, mep, 40.0_MHz, 5.0, 5.0);
  }
  {
    CpuSetup s = make_cpu_setup();
    const MepResult mep =
        analyze_mep(s.original.netlist, s.e_dyn_original, s.cfg.corner, opt);
    compare("SCM0", s.model_gated, mep, 20.0_MHz, 5.0, 4.8);
  }
  // The wider budget narrows the gap (paper: 2.9x at 40 uW for the
  // multiplier).
  {
    MultSetup s = make_mult_setup();
    const MepResult mep =
        analyze_mep(s.original, s.e_dyn_original, s.cfg.corner, opt);
    const Power larger = mep.minimum.power() * 2.4;
    const Frequency f = max_frequency_for_budget(
        s.model_gated, GatingMode::ScpgMax, larger, 1.0_kHz, 40.0_MHz);
    const Energy e = s.model_gated.energy_per_op(GatingMode::ScpgMax, f);
    std::cout << "with a larger budget ("
              << TextTable::num(in_uW(larger), 1)
              << " uW) the energy gap narrows to "
              << TextTable::num(e.v / mep.minimum.e_total().v, 1)
              << "x  [paper: 2.9x at 40 uW]\n";
  }
  return 0;
}
