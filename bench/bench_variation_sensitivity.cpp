// Process-variation sensitivity (paper §IV, qualitative claim):
// "[a sub-threshold] circuit is more sensitive to process variations ...
// The increased sensitivity can skew the minimum energy point
// significantly ... In comparison, SCPG operates above threshold voltage
// maintaining greater stability with process and temperature variations."
//
// Monte-Carlo over global threshold-voltage corners (Vt ~ N(nominal,
// 20 mV), a typical 90 nm global-corner sigma): at each sample we rebuild
// the technology model and compare
//   * the sub-threshold design at its NOMINAL MEP supply (the silicon is
//     committed to one voltage; variation moves the actual MEP away), vs
//   * SCPG at 0.6 V / 100 kHz.
// The spread of energy/op across corners quantifies the stability claim.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "util/numeric.hpp"

using namespace scpg;
using namespace scpg::benchx;

namespace {

double gauss(Rng& rng) {
  // Box-Muller from two uniforms.
  const double u1 = std::max(rng.uniform(), 1e-12);
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307 * u2);
}

} // namespace

int main() {
  std::cout << "=== §IV stability: MEP vs SCPG under global Vt variation "
               "(16-bit multiplier) ===\n\n";
  const int kSamples = 40;
  const double kSigmaVt = 0.020; // 20 mV global corner sigma

  // Nominal MEP supply (the voltage the sub-threshold design commits to).
  MultSetup nom = make_mult_setup();
  const MepResult nom_mep =
      analyze_mep(nom.original, nom.e_dyn_original, nom.cfg.corner);
  const Voltage v_mep = nom_mep.minimum.vdd;
  std::cout << "nominal MEP: " << TextTable::num(in_mV(v_mep), 0)
            << " mV, " << TextTable::num(in_pJ(nom_mep.minimum.e_total()), 2)
            << " pJ/op\n";
  std::cout << "sampling " << kSamples << " global corners, sigma(Vt) = "
            << TextTable::num(kSigmaVt * 1e3, 0) << " mV\n\n";

  // Each Monte-Carlo corner draws from its own split RNG stream
  // (Rng::stream keyed by sample index), so samples are independent and
  // the result is identical at any job count.
  struct Sample {
    double e_sub, f_sub, e_scpg, p_scpg;
  };
  const auto samples =
      parallel_map(std::size_t(kSamples), 0, [&](std::size_t s) {
        Rng rng = Rng::stream(0xDEC0DE, std::uint64_t(s));
        TechParams tp = nom.original.lib().tech().params();
        tp.vt = Voltage{tp.vt.v + kSigmaVt * gauss(rng)};
        const Library lib = Library::scpg90(tp);

        // Sub-threshold design pinned at the nominal MEP supply.
        Netlist sub = gen::make_multiplier(lib, 16);
        const MepPoint p =
            mep_point(sub, nom.e_dyn_original, nom.cfg.corner, v_mep, 25.0);

        // SCPG at its comfortable above-threshold corner.
        Netlist gated = gen::make_multiplier(lib, 16);
        apply_scpg(gated);
        SimConfig cfg;
        cfg.corner = {0.6_V, 25.0};
        const ScpgPowerModel m =
            ScpgPowerModel::extract(gated, cfg, nom.e_dyn_gated);
        const Frequency f = 100.0_kHz;
        const auto duty = m.duty_for(GatingMode::ScpgMax, f);
        const Power pw = m.average_power_gated(f, duty.value_or(0.5));
        return Sample{in_pJ(p.e_total()), in_MHz(p.fmax),
                      in_pJ(Energy{pw.v / f.v}), in_uW(pw)};
      });
  std::vector<double> e_sub, f_sub, e_scpg, p_scpg;
  for (const Sample& s : samples) {
    e_sub.push_back(s.e_sub);
    f_sub.push_back(s.f_sub);
    e_scpg.push_back(s.e_scpg);
    p_scpg.push_back(s.p_scpg);
  }

  auto spread = [](const std::vector<double>& v) {
    return 100.0 * stddev(v) / mean(v);
  };
  auto span = [](const std::vector<double>& v) {
    return *std::max_element(v.begin(), v.end()) /
           *std::min_element(v.begin(), v.end());
  };

  // The decisive axis is DELIVERED PERFORMANCE: the sub-threshold silicon
  // is committed to one supply, so its clock must track the slowest
  // corner; SCPG runs a fixed above-threshold clock at every corner.
  TextTable t("throughput across corners (committed operating point)");
  t.header({"design", "mean", "min..max", "sigma/mean"});
  t.row({"sub-threshold @" + TextTable::num(in_mV(v_mep), 0) + " mV",
         TextTable::num(mean(f_sub), 1) + " MHz",
         TextTable::num(*std::min_element(f_sub.begin(), f_sub.end()), 1) +
             " .. " +
             TextTable::num(*std::max_element(f_sub.begin(), f_sub.end()),
                            1) +
             " MHz",
         TextTable::num(spread(f_sub), 0) + "%"});
  t.row({"SCPG-Max @600 mV", "0.1 MHz (fixed)", "0.1 .. 0.1 MHz", "0%"});
  t.print(std::cout);

  std::cout << "\nsub-threshold min..max throughput ratio: "
            << TextTable::num(span(f_sub), 1)
            << "x — a design margined for the slow corner forfeits most "
               "of its nominal speed,\nwhile SCPG's above-threshold "
               "timing margin barely moves (duty_max at 100 kHz stays "
               ">97% at every sampled corner).\n";

  std::cout << "\nenergy note: energy/op spread is "
            << TextTable::num(spread(e_sub), 1)
            << "% (sub-threshold) vs " << TextTable::num(spread(e_scpg), 1)
            << "% (SCPG at fixed f).  Sub-threshold energy partially "
               "self-compensates\n(leakage up <=> delay down), but only "
               "if the clock chases the corner — which is exactly the "
               "operational fragility the paper describes.  SCPG's spread "
               "is plain leakage-power spread; its function and clock "
               "never move.\n";

  std::cout << "\nverdict: "
            << (span(f_sub) > 2.0
                    ? "the committed sub-threshold design's performance "
                      "swings " + TextTable::num(span(f_sub), 1) +
                          "x across corners while SCPG's is fixed — the "
                          "paper's §IV stability argument holds."
                    : "UNEXPECTED: sub-threshold throughput is stable.")
            << "\n";
  return 0;
}
