// Engine micro-benchmarks (google-benchmark): throughput of the
// substrates the reproduction is built on — event-driven simulation,
// functional simulation, STA, the SCPG transform, and the analytic model.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "netlist/funcsim.hpp"
#include "sta/sta.hpp"

using namespace scpg;
using namespace scpg::benchx;

namespace {

const Netlist& mult_gated() {
  static const Netlist nl = [] {
    Netlist n = gen::make_multiplier(bench_lib(), 16);
    apply_scpg(n);
    return n;
  }();
  return nl;
}

void BM_EventSimMultiplierCycle(benchmark::State& state) {
  const Netlist& nl = mult_gated();
  SimConfig cfg;
  cfg.corner = {Voltage{0.6}, 25.0};
  Simulator sim(nl, cfg);
  sim.init_flops_to_zero();
  sim.drive_at(0, nl.port_net("override_n"), Logic::L1);
  const Frequency f{1e6};
  const SimTime T = to_fs(period(f));
  sim.add_clock(nl.port_net("clk"), f, 0.5, T / 2);
  Rng rng(1);
  SimTime t = T;
  for (auto _ : state) {
    sim.drive_bus_at(t, "a", rng.bits(16), 16);
    sim.drive_bus_at(t, "b", rng.bits(16), 16);
    t += T;
    sim.run_until(t);
    benchmark::DoNotOptimize(sim.tally().total().v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventSimMultiplierCycle);

void BM_FuncSimMultiplierCycle(benchmark::State& state) {
  static Netlist nl = gen::make_multiplier(bench_lib(), 16);
  FuncSim fs(nl);
  fs.reset();
  fs.set_input("clk", Logic::L0);
  Rng rng(2);
  for (auto _ : state) {
    fs.set_input_bus("a", rng.bits(16), 16);
    fs.set_input_bus("b", rng.bits(16), 16);
    fs.clock();
    benchmark::DoNotOptimize(fs.toggles_last_cycle());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FuncSimMultiplierCycle);

void BM_StaMultiplier(benchmark::State& state) {
  const Netlist& nl = mult_gated();
  for (auto _ : state) {
    const StaReport r = run_sta(nl, {Voltage{0.6}, 25.0});
    benchmark::DoNotOptimize(r.fmax.v);
  }
}
BENCHMARK(BM_StaMultiplier);

void BM_ScpgTransform(benchmark::State& state) {
  for (auto _ : state) {
    Netlist nl = gen::make_multiplier(bench_lib(), 16);
    const ScpgInfo info = apply_scpg(nl);
    benchmark::DoNotOptimize(info.isolation_cells);
  }
}
BENCHMARK(BM_ScpgTransform);

// Scaling curve for the parallel sweep engine: the same 16-point grid
// (2 designs x 8 frequencies) at increasing job counts.  On a multi-core
// host items/sec should rise near-linearly until the grid or the core
// count is exhausted; the results are bit-identical at every job count.
void BM_SweepScaling(benchmark::State& state) {
  static MultSetup s = make_mult_setup();
  std::vector<Frequency> fs;
  for (double fm : {0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0})
    fs.push_back(Frequency{fm * 1e6});
  const int jobs = int(state.range(0));
  for (auto _ : state) {
    engine::SweepSpec spec = mult_spec(s.cfg, 8);
    spec.design(s.original)
        .design(s.gated)
        .frequencies(fs)
        .jobs(jobs)
        .use_cache(false);
    const engine::SweepResult res = engine::Experiment(std::move(spec)).run();
    benchmark::DoNotOptimize(res[0].avg_power.v);
  }
  state.SetItemsProcessed(state.iterations() * 2 * std::int64_t(fs.size()));
}
BENCHMARK(BM_SweepScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_AnalyticModelPoint(benchmark::State& state) {
  static MultSetup s = make_mult_setup();
  double f = 1e5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.model_gated.average_power_gated(Frequency{f}, 0.5).v);
    f = f < 1e7 ? f * 1.01 : 1e5;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyticModelPoint);

} // namespace

BENCHMARK_MAIN();
