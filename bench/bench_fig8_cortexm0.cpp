// Reproduces paper Fig 8(a)/(b): SCM0 average power and energy per
// operation vs clock frequency.  The key qualitative result is the lower
// convergence point than the multiplier's (paper: ~5 MHz vs ~15 MHz) —
// the larger domain pays more rail-recharge and crowbar overhead.
#include <iostream>

#include "common.hpp"

using namespace scpg;
using namespace scpg::benchx;

int main() {
  std::cout << "=== Fig 8: SCM0 (Cortex-M0 substitute), VDD = 0.6 V ===\n\n";
  CpuSetup s = make_cpu_setup();

  std::vector<double> fs, p_none, p_50, p_max, e_none, e_50, e_max;
  for (double fm = 0.05; fm <= 10.0; fm += 0.05) {
    const Frequency f{fm * 1e6};
    fs.push_back(fm);
    const Power pn = s.model_original.average_power_ungated(f);
    const Power p5 = s.model_gated.average_power(GatingMode::Scpg50, f);
    const Power pm = s.model_gated.average_power(GatingMode::ScpgMax, f);
    p_none.push_back(in_uW(pn));
    p_50.push_back(in_uW(p5));
    p_max.push_back(in_uW(pm));
    e_none.push_back(in_pJ(Energy{pn.v / f.v}));
    e_50.push_back(in_pJ(Energy{p5.v / f.v}));
    e_max.push_back(in_pJ(Energy{pm.v / f.v}));
  }

  AsciiChart power("Fig 8(a): avg power per cycle / uW  vs  clock / MHz");
  power.series("No Power Gating", fs, p_none);
  power.series("SCPG", fs, p_50);
  power.series("SCPG-Max", fs, p_max);
  power.print(std::cout);

  AsciiChart energy("Fig 8(b): energy per operation / pJ  vs  clock / MHz");
  energy.log_y(true);
  energy.series("No Power Gating", fs, e_none);
  energy.series("SCPG", fs, e_50);
  energy.series("SCPG-Max", fs, e_max);
  energy.print(std::cout);

  const Frequency conv_cpu = convergence_frequency(
      s.model_gated, GatingMode::Scpg50, 50.0_kHz, 20.0_MHz);
  std::cout << "\nconvergence point, analytic model (SCM0): "
            << TextTable::num(in_MHz(conv_cpu), 1)
            << " MHz   [paper Fig 8(a): ~5 MHz]\n";
  // Measured crossover: the detailed simulation also pays the re-eval /
  // isolation dynamic penalty, pulling the crossover lower.
  double lo = 1.0, hi = 10.0;
  for (int i = 0; i < 5; ++i) {
    const double mid = 0.5 * (lo + hi);
    // Both designs at the probe frequency run as one 2-point sweep.
    engine::SweepSpec probe = cpu_spec(s.cfg);
    probe.design(s.original.netlist)
        .design(s.gated.netlist)
        .frequency(Frequency{mid * 1e6})
        .jobs(0);
    const engine::SweepResult r = engine::Experiment(std::move(probe)).run();
    const double pn = in_uW(r[0].avg_power);
    const double pg = in_uW(r[1].avg_power);
    (pg < pn ? lo : hi) = mid;
  }
  std::cout << "convergence point, measured (SCM0): ~"
            << TextTable::num(0.5 * (lo + hi), 1) << " MHz\n";

  // The paper's comparison: the multiplier converges later.
  MultSetup m = make_mult_setup();
  const Frequency conv_mult = convergence_frequency(
      m.model_gated, GatingMode::Scpg50, 50.0_kHz, 40.0_MHz);
  std::cout << "convergence point (multiplier): "
            << TextTable::num(in_MHz(conv_mult), 1)
            << " MHz   [paper Fig 6(a): ~15 MHz]\n";
  std::cout << "larger domain converges earlier: "
            << (conv_cpu.v < conv_mult.v ? "yes (matches paper)"
                                         : "NO (mismatch)")
            << "\n\n";

  // Anchor points: both designs at every frequency, one parallel sweep
  // (row order: design-major).
  const std::vector<double> anchors_mhz = {0.01, 0.1, 1.0, 5.0, 10.0};
  std::vector<Frequency> anchor_fs;
  for (double fm : anchors_mhz) anchor_fs.push_back(Frequency{fm * 1e6});
  engine::SweepSpec spec = cpu_spec(s.cfg);
  spec.design(s.original.netlist)
      .design(s.gated.netlist)
      .frequencies(anchor_fs)
      .jobs(0);
  const engine::SweepResult anchors =
      engine::Experiment(std::move(spec)).run();

  TextTable t("simulator anchor points (uW)");
  t.header({"Clock MHz", "NoPG sim", "SCPG sim", "SCPG model"});
  for (std::size_t i = 0; i < anchors_mhz.size(); ++i) {
    const Frequency f = anchor_fs[i];
    t.row({TextTable::num(anchors_mhz[i], 2),
           TextTable::num(in_uW(anchors[i].avg_power), 2),
           TextTable::num(in_uW(anchors[anchors_mhz.size() + i].avg_power),
                          2),
           TextTable::num(
               in_uW(s.model_gated.average_power(GatingMode::Scpg50, f)),
               2)});
  }
  t.print(std::cout);
  return 0;
}
