// Positions sub-clock power gating against traditional idle-mode power
// gating — the comparison the paper's introduction frames (§I):
// traditional PG saves leakage only while a block SLEEPS; SCPG saves it
// while the block WORKS at a scaled frequency.
//
// Scenario: the 16-bit multiplier alternates active bursts (computing at
// f_active, 50% duty available for SCPG) with idle stretches (traditional
// PG asleep with the clock stopped; plain SCPG can park the clock high,
// which gates its domain through the same header).  Average power is
// simulated for several utilisation ratios.
#include <iostream>

#include "common.hpp"
#include "scpg/traditional.hpp"

using namespace scpg;
using namespace scpg::benchx;

namespace {

/// Simulates `active` cycles of random operands followed by `idle` clock
/// periods of quiet, and returns the average power over the whole span.
Power run_profile(const Netlist& nl, SimConfig cfg, Frequency f,
                  int active_cycles, int idle_periods, bool has_sleep_port,
                  bool park_clock_high) {
  Simulator sim(nl, cfg);
  sim.init_flops_to_zero();
  const NetId clk = nl.port_net("clk");
  if (const PortId ov = nl.find_port("override_n"); ov.valid())
    sim.drive_at(0, nl.port(ov).net, Logic::L1);
  if (const PortId sl = nl.find_port("sleep_req"); sl.valid())
    sim.drive_at(0, nl.port(sl).net, Logic::L0);
  sim.drive_at(0, clk, Logic::L0);

  Rng rng(0xC0FFEE);
  const SimTime T = to_fs(period(f));
  SimTime t = T; // settle before measuring
  sim.run_until(t);
  sim.reset_tally();

  for (int rep = 0; rep < 3; ++rep) {
    // Active burst: manual 50%-duty clock, fresh operands each cycle.
    for (int c = 0; c < active_cycles; ++c) {
      sim.drive_bus_at(t + T / 16, "a", rng.bits(16), 16);
      sim.drive_bus_at(t + T / 16, "b", rng.bits(16), 16);
      sim.drive_at(t + T / 2, clk, Logic::L1);
      sim.drive_at(t + T, clk, Logic::L0);
      t += T;
    }
    // Idle stretch.
    if (has_sleep_port)
      sim.drive_at(t, nl.port_net("sleep_req"), Logic::L1);
    if (park_clock_high) sim.drive_at(t, clk, Logic::L1);
    t += T * idle_periods;
    sim.run_until(t);
    if (has_sleep_port)
      sim.drive_at(t, nl.port_net("sleep_req"), Logic::L0);
    if (park_clock_high) sim.drive_at(t, clk, Logic::L0);
    t += T; // wake margin
    sim.run_until(t);
  }
  sim.run_until(t);
  Simulator& s = sim;
  return s.tally().average();
}

} // namespace

int main() {
  std::cout << "=== traditional idle-mode PG vs sub-clock PG (16-bit "
               "multiplier, 1 MHz bursts, 0.6 V) ===\n\n";
  const Library& lib = bench_lib();
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};

  Netlist plain = gen::make_multiplier(lib, 16);
  Netlist trad = gen::make_multiplier(lib, 16);
  const TraditionalPgInfo ti = apply_traditional_pg(trad);
  Netlist scpg = gen::make_multiplier(lib, 16);
  const ScpgInfo si = apply_scpg(scpg);

  std::cout << "area overhead: traditional "
            << TextTable::num(100.0 * ti.area_overhead(), 1)
            << "% (retention balloons + fabric) vs SCPG "
            << TextTable::num(100.0 * si.area_overhead(), 1)
            << "% (no retention, no controller)\n\n";

  const Frequency f = 1.0_MHz;
  TextTable t("average power by workload utilisation (active burst of 32 "
              "cycles; idle stretch sets the ratio)");
  t.header({"active %", "no PG", "traditional PG", "SCPG", "SCPG+parked"});
  // 5 utilisations x 4 configurations: each profile is an independent
  // simulation over a shared read-only netlist, so the whole grid runs
  // as parallel jobs (row-major flattening).
  const std::vector<int> idles = {0, 32, 96, 320, 3168};
  struct Config {
    const Netlist* nl;
    bool sleep_port;
    bool park_high;
  };
  const Config configs[] = {{&plain, false, false},
                            {&trad, true, false},
                            {&scpg, false, false},
                            {&scpg, false, true}};
  constexpr std::size_t kCfgs = std::size(configs);
  const auto powers =
      parallel_map(idles.size() * kCfgs, 0, [&](std::size_t i) {
        const Config& c = configs[i % kCfgs];
        return in_uW(run_profile(*c.nl, cfg, f, 32, idles[i / kCfgs],
                                 c.sleep_port, c.park_high));
      });
  for (std::size_t r = 0; r < idles.size(); ++r) {
    const double util = 32.0 / (32.0 + idles[r]);
    t.row({TextTable::num(100.0 * util, util < 0.05 ? 1 : 0) + "%",
           TextTable::num(powers[r * kCfgs + 0], 2),
           TextTable::num(powers[r * kCfgs + 1], 2),
           TextTable::num(powers[r * kCfgs + 2], 2),
           TextTable::num(powers[r * kCfgs + 3], 2)});
  }
  t.print(std::cout);

  std::cout <<
      "\nreading the table (the paper's positioning):\n"
      "  * 100% active: traditional PG saves nothing (it cannot gate a\n"
      "    clocked block) — SCPG saves its active-mode leakage;\n"
      "  * mostly idle: traditional PG approaches its retention floor;\n"
      "    plain SCPG leaks through the ungated low phase when the clock\n"
      "    stops low, but parking the clock HIGH keeps its domain gated\n"
      "    and matches traditional PG without any retention hardware;\n"
      "  * in between, SCPG wins whenever the block computes at a scaled\n"
      "    frequency — the regime the paper targets.\n";
  return 0;
}
