// Backend throughput comparison: the same compiled-eligible operating
// points (gating overridden off — the configuration both backends can
// measure) timed on the event-driven reference and on the compiled
// levelized kernel, for both case studies, plus the 64-lane BatchSim
// bit-parallel configuration.
//
// Output is one parse-friendly line per measurement:
//
//   bench_sim_backends: design=mult16 event_pts_per_s=...
//       compiled_pts_per_s=... ratio=...   (one line in reality)
//
// `tools/check.sh --simperf` builds this binary and fails the build when
// the mult16 or SCM0 ratio drops below the pinned floor.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "sim/compiled/kernel.hpp"

using namespace scpg;
using namespace scpg::benchx;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One sweep of `points` distinct rows (seed axis) on one backend,
/// jobs(1) and cache off so wall time is pure simulation.
engine::SweepSpec spec_for(const Netlist& nl, bool is_cpu, sim::Backend b,
                           int points) {
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < points; ++i) seeds.push_back(std::uint64_t(i) + 1);
  engine::SweepSpec spec;
  SimConfig cfg;
  cfg.corner = {0.6_V, 25.0};
  if (is_cpu) {
    spec.base_sim(cpu::scm0_sim_config()).cycles(40).setup(cpu_setup());
  } else {
    spec.base_sim(cfg).cycles(24).stimulus(mult_stimulus());
  }
  spec.design(nl)
      .frequency(1.0_MHz)
      .override_gating(true)
      .seeds(std::move(seeds))
      .jobs(1)
      .use_cache(false)
      .backend(b);
  return spec;
}

double points_per_s(const Netlist& nl, bool is_cpu, sim::Backend b,
                    int points) {
  // Warm once outside the timed region: the first compiled point pays
  // levelization (amortised by the process-wide program cache) and the
  // first event point faults in the library tables.
  (void)engine::Experiment(spec_for(nl, is_cpu, b, 1)).run();
  const auto t0 = std::chrono::steady_clock::now();
  const engine::SweepResult res =
      engine::Experiment(spec_for(nl, is_cpu, b, points)).run();
  const double dt = seconds_since(t0);
  if (res.size() != std::size_t(points) || dt <= 0) return 0;
  return double(points) / dt;
}

void compare(const char* name, const Netlist& nl, bool is_cpu,
             int event_points, int compiled_points) {
  const double ev =
      points_per_s(nl, is_cpu, sim::Backend::Event, event_points);
  const double co =
      points_per_s(nl, is_cpu, sim::Backend::Compiled, compiled_points);
  std::printf("bench_sim_backends: design=%s event_pts_per_s=%.2f "
              "compiled_pts_per_s=%.2f ratio=%.1f\n",
              name, ev, co, ev > 0 ? co / ev : 0.0);
}

/// The bit-parallel configuration: 64 independent stimulus lanes per
/// pass.  Reported in lane-cycles/s (one lane-cycle = one registered
/// cycle of one independent simulation).
void batch_demo(const Netlist& nl, int cycles) {
  sim::compiled::BatchSim bs(nl);
  bs.reset();
  bs.set_input_word("clk", sim::compiled::broadcast(Logic::L0));
  Rng rng(3);
  // Drive whole 64-lane words per bus bit (the intended bit-parallel
  // drive path): draw one 16-bit value per lane, transpose to 16 Words.
  const auto drive = [&](const char* bus) {
    std::uint64_t lane_vals[64];
    for (std::uint64_t& v : lane_vals) v = rng.bits(16);
    for (int i = 0; i < 16; ++i) {
      sim::compiled::Word w; // x == 0: every lane known
      for (int lane = 0; lane < 64; ++lane)
        w.v |= ((lane_vals[lane] >> i) & 1) << lane;
      bs.set_input_word(std::string(bus) + "[" + std::to_string(i) + "]", w);
    }
  };
  // Warm the pipeline so the timed loop starts from known state.
  drive("a");
  drive("b");
  bs.clock();
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  for (int c = 0; c < cycles; ++c) {
    drive("a");
    drive("b");
    bs.clock();
    sink ^= bs.read_bus_lane(int(sink) & 63, "p", 32);
  }
  const double dt = seconds_since(t0);
  std::printf("bench_sim_backends: design=mult16 "
              "batch_lane_cycles_per_s=%.0f (sink=%llx)\n",
              dt > 0 ? 64.0 * cycles / dt : 0.0,
              static_cast<unsigned long long>(sink));
}

} // namespace

int main() {
  MultSetup mult = make_mult_setup();
  CpuSetup cpu = make_cpu_setup();
  compare("mult16", mult.gated, false, 8, 200);
  compare("scm0", cpu.gated.netlist, true, 8, 200);
  batch_demo(mult.original, 2000);
  return 0;
}
