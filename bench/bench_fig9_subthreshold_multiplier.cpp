// Reproduces paper Fig 9: energy per operation vs supply voltage for the
// 16-bit multiplier under sub-threshold scaling, locating the minimum
// energy point (paper: ~310 mV, ~1.7 pJ, ~10 MHz).
#include <iostream>

#include "common.hpp"

using namespace scpg;
using namespace scpg::benchx;

int main() {
  std::cout << "=== Fig 9: multiplier energy/op vs VDD (sub-threshold "
               "sweep) ===\n\n";
  MultSetup s = make_mult_setup();
  MepOptions opt;
  opt.v_lo = Voltage{0.16};
  opt.v_hi = Voltage{0.9};
  opt.points = 60;
  opt.jobs = 0;
  const MepResult r =
      analyze_mep(s.original, s.e_dyn_original, s.cfg.corner, opt);

  std::vector<double> vs, es, ed, el;
  for (const MepPoint& p : r.sweep) {
    vs.push_back(in_mV(p.vdd));
    es.push_back(in_pJ(p.e_total()));
    ed.push_back(in_pJ(p.e_dynamic));
    el.push_back(in_pJ(p.e_leakage));
  }
  AsciiChart chart("energy per operation / pJ  vs  supply / mV");
  chart.series("total", vs, es);
  chart.series("dynamic", vs, ed);
  chart.series("leakage", vs, el);
  chart.print(std::cout);

  std::cout << "\nminimum energy point:\n";
  TextTable t;
  t.header({"", "VDD mV", "E/op pJ", "fmax MHz", "power uW"});
  t.row({"measured", TextTable::num(in_mV(r.minimum.vdd), 0),
         TextTable::num(in_pJ(r.minimum.e_total()), 2),
         TextTable::num(in_MHz(r.minimum.fmax), 1),
         TextTable::num(in_uW(r.minimum.power()), 1)});
  t.row({"paper", "310", "1.70", "~10", "17"});
  t.print(std::cout);

  std::cout << "\nCSV (vdd_mv,e_total_pj,e_dynamic_pj,e_leakage_pj)\n";
  TextTable csv;
  csv.header({"vdd", "et", "ed", "el"});
  for (std::size_t i = 0; i < vs.size(); i += 3)
    csv.row({TextTable::num(vs[i], 0), TextTable::num(es[i], 3),
             TextTable::num(ed[i], 3), TextTable::num(el[i], 3)});
  csv.print_csv(std::cout);
  return 0;
}
