// Shared setup for the reproduction benches: builds the two case studies
// (original + SCPG-transformed), calibrates dynamic energy, extracts the
// analytic models, and provides the measurement loops used by every
// table/figure binary.
#pragma once

#include <optional>
#include <string>

#include "cpu/assembler.hpp"
#include "cpu/core.hpp"
#include "cpu/iss.hpp"
#include "cpu/workloads.hpp"
#include "gen/mult16.hpp"
#include "mep/mep.hpp"
#include "scpg/analysis.hpp"
#include "scpg/measure.hpp"
#include "scpg/model.hpp"
#include "scpg/transform.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace scpg::benchx {

using namespace scpg::literals;

/// Process-lifetime cell library (netlists keep a pointer to it).
[[nodiscard]] const Library& bench_lib();

/// The 16-bit multiplier case study (paper §III-A).
struct MultSetup {
  Netlist original;
  Netlist gated;
  ScpgInfo info;
  SimConfig cfg;          ///< multiplier rail calibration (defaults)
  Energy e_dyn_original;  ///< measured dynamic energy/cycle, random operands
  Energy e_dyn_gated;
  ScpgPowerModel model_original;
  ScpgPowerModel model_gated;
};

[[nodiscard]] MultSetup make_mult_setup();

/// Measures the multiplier with fresh random operands every cycle.
[[nodiscard]] MeasureResult measure_mult(const Netlist& nl, SimConfig cfg,
                                         Frequency f, double duty,
                                         bool override_gating,
                                         int cycles = 24);

/// The SCM0 microcontroller case study (paper §III-B).
struct CpuSetup {
  std::vector<std::uint16_t> image; ///< Dhrystone-like program
  cpu::Scm0 original;
  cpu::Scm0 gated;
  ScpgInfo info;
  SimConfig cfg;          ///< SCM0 rail calibration
  Energy e_dyn_original;
  Energy e_dyn_gated;
  ScpgPowerModel model_original;
  ScpgPowerModel model_gated;
};

[[nodiscard]] CpuSetup make_cpu_setup(int dhrystone_iterations = 5);

/// Measures the SCM0 free-running its program image.
[[nodiscard]] MeasureResult measure_cpu(const Netlist& nl, SimConfig cfg,
                                        Frequency f, double duty,
                                        bool override_gating,
                                        int cycles = 40);

/// One row of a paper-style table: power and energy in the three modes
/// plus savings relative to no gating.
struct TableRow {
  Frequency f{};
  Power p_none{}, p_50{}, p_max{};
  double duty_max{0.5};
  bool scpg50_feasible{true};
  bool scpgmax_feasible{true};

  [[nodiscard]] Energy e_none() const { return Energy{p_none.v / f.v}; }
  [[nodiscard]] Energy e_50() const { return Energy{p_50.v / f.v}; }
  [[nodiscard]] Energy e_max() const { return Energy{p_max.v / f.v}; }
  [[nodiscard]] double saving_50() const {
    return 100.0 * (1.0 - p_50.v / p_none.v);
  }
  [[nodiscard]] double saving_max() const {
    return 100.0 * (1.0 - p_max.v / p_none.v);
  }
};

/// Formats a TableRow block in the paper's Table I/II layout.
void print_rows(const std::string& title,
                const std::vector<TableRow>& rows);

} // namespace scpg::benchx
