// Shared setup for the reproduction benches: builds the two case studies
// (original + SCPG-transformed), calibrates dynamic energy, extracts the
// analytic models, and provides engine::SweepSpec fixtures so every
// table/figure binary runs its operating points through the parallel
// sweep engine (SCPG_JOBS controls the worker count).
#pragma once

#include <optional>
#include <span>
#include <string>

#include "cpu/assembler.hpp"
#include "cpu/core.hpp"
#include "cpu/iss.hpp"
#include "cpu/workloads.hpp"
#include "engine/sweep.hpp"
#include "gen/mult16.hpp"
#include "mep/mep.hpp"
#include "scpg/analysis.hpp"
#include "scpg/model.hpp"
#include "scpg/transform.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace scpg::benchx {

using namespace scpg::literals;

/// Process-lifetime cell library (netlists keep a pointer to it).
[[nodiscard]] const Library& bench_lib();

/// Random-operand multiplier stimulus driven from the engine's per-point
/// RNG stream (deterministic per operating point, any job count).
/// Declarative, so every simulation backend can execute it.
[[nodiscard]] sim::StimulusSpec mult_stimulus();
inline const std::string kMultStimKey = "mult:rand16@+1ns";

/// Releases the SCM0 reset at time 0.
[[nodiscard]] sim::SetupSpec cpu_setup();
inline const std::string kCpuSetupKey = "scm0:rst_n@0";

/// The benches' simulation backend: SCPG_BACKEND env ("event",
/// "compiled", "auto"); defaults to the event reference.
[[nodiscard]] sim::Backend bench_backend();

/// SweepSpec preloaded with the multiplier fixture (random operands,
/// `cfg` rail calibration, `cycles` measured cycles).  Add designs, axes
/// or points, then run an engine::Experiment.
[[nodiscard]] engine::SweepSpec mult_spec(SimConfig cfg, int cycles = 24);

/// SweepSpec preloaded with the SCM0 fixture (reset release, free-running
/// program image).
[[nodiscard]] engine::SweepSpec cpu_spec(SimConfig cfg, int cycles = 40);

/// The 16-bit multiplier case study (paper §III-A).
struct MultSetup {
  Netlist original;
  Netlist gated;
  ScpgInfo info;
  SimConfig cfg;          ///< multiplier rail calibration (defaults)
  Energy e_dyn_original;  ///< measured dynamic energy/cycle, random operands
  Energy e_dyn_gated;
  ScpgPowerModel model_original;
  ScpgPowerModel model_gated;
};

[[nodiscard]] MultSetup make_mult_setup();

/// Measures the multiplier at one operating point with fresh random
/// operands every cycle (engine-backed: cached and deterministic).
[[nodiscard]] engine::Measurement measure_mult(const Netlist& nl, SimConfig cfg,
                                         Frequency f, double duty,
                                         bool override_gating,
                                         int cycles = 24);

/// The SCM0 microcontroller case study (paper §III-B).
struct CpuSetup {
  std::vector<std::uint16_t> image; ///< Dhrystone-like program
  cpu::Scm0 original;
  cpu::Scm0 gated;
  ScpgInfo info;
  SimConfig cfg;          ///< SCM0 rail calibration
  Energy e_dyn_original;
  Energy e_dyn_gated;
  ScpgPowerModel model_original;
  ScpgPowerModel model_gated;
};

[[nodiscard]] CpuSetup make_cpu_setup(int dhrystone_iterations = 5);

/// Measures the SCM0 free-running its program image.
[[nodiscard]] engine::Measurement measure_cpu(const Netlist& nl, SimConfig cfg,
                                        Frequency f, double duty,
                                        bool override_gating,
                                        int cycles = 40);

/// One row of a paper-style table: power and energy in the three modes
/// plus savings relative to no gating.
struct TableRow {
  Frequency f{};
  Power p_none{}, p_50{}, p_max{};
  double duty_max{0.5};
  bool scpg50_feasible{true};
  bool scpgmax_feasible{true};

  [[nodiscard]] Energy e_none() const { return Energy{p_none.v / f.v}; }
  [[nodiscard]] Energy e_50() const { return Energy{p_50.v / f.v}; }
  [[nodiscard]] Energy e_max() const { return Energy{p_max.v / f.v}; }
  [[nodiscard]] double saving_50() const {
    return 100.0 * (1.0 - p_50.v / p_none.v);
  }
  [[nodiscard]] double saving_max() const {
    return 100.0 * (1.0 - p_max.v / p_none.v);
  }
};

/// Measures a whole paper-style table as ONE engine sweep: at each
/// frequency, no-PG on `original` and SCPG@50% / SCPG-Max (duty from the
/// model) on `gated` — all points run concurrently (`jobs <= 0` means
/// default_jobs()).  An infeasible SCPG-Max row reports the @50% power,
/// as the paper's starred rows do.
[[nodiscard]] std::vector<TableRow> measure_rows(
    const Netlist& original, const Netlist& gated,
    const ScpgPowerModel& gated_model, engine::SweepSpec spec,
    std::span<const double> freqs_mhz, int jobs = 0);

/// Formats a TableRow block in the paper's Table I/II layout.
void print_rows(const std::string& title,
                const std::vector<TableRow>& rows);

} // namespace scpg::benchx
