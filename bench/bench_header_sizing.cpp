// Reproduces the paper's sleep-transistor sizing study (S1) and the
// header-size-vs-convergence ablation (A3).
//
// Paper §III: "the best IR drop can be achieved with X2 size transistors
// for the 16-bit multiplier, and X4 size transistors for the Cortex-M0"
// under in-rush / ground-bounce constraints.
#include <iostream>

#include "common.hpp"
#include "scpg/header_sizing.hpp"
#include "scpg/rail_model.hpp"

using namespace scpg;
using namespace scpg::benchx;

namespace {

void sizing_study(const std::string& title, const ScpgPowerModel& model,
                  const RailParams& rail, Energy e_dyn, Time t_eval,
                  Current inrush_budget, int paper_pick) {
  (void)model;
  HeaderDemand d;
  d.vdd = rail.vdd;
  d.c_dom = rail.c_dom;
  d.i_eval = Current{e_dyn.v / (rail.vdd.v * t_eval.v)};
  HeaderConstraints c;
  c.max_ir_frac = 0.05;
  c.max_inrush = inrush_budget;

  std::cout << title << "\n  domain demand: I_eval ~ "
            << TextTable::num(in_uA(d.i_eval), 0) << " uA, C_rail "
            << TextTable::num(in_pF(d.c_dom), 1)
            << " pF; in-rush budget "
            << TextTable::num(in_mA(c.max_inrush), 0) << " mA\n";
  TextTable t;
  t.header({"bank", "Ron eff", "IR drop", "IR %Vdd", "in-rush", "off leak",
            "T_ready", "area", "feasible"});
  for (const HeaderEval& e :
       sweep_headers(bench_lib(), 4, d, c, {rail.vdd, 25.0},
                     /*jobs=*/0)) {
    t.row({"4 x X" + std::to_string(e.drive),
           TextTable::num(e.ron_eff.v, 0) + " Ohm",
           TextTable::num(in_mV(e.ir_drop), 1) + " mV",
           TextTable::num(100.0 * e.ir_drop.v / d.vdd.v, 2) + "%",
           TextTable::num(in_mA(e.inrush_peak), 1) + " mA",
           TextTable::num(in_nW(e.off_leak), 0) + " nW",
           TextTable::num(in_ns(e.t_ready), 2) + " ns",
           TextTable::num(in_um2(e.area), 0) + " um2",
           e.feasible() ? "yes" : "no"});
  }
  t.print(std::cout);
  const HeaderEval pick =
      choose_header(bench_lib(), 4, d, c, {rail.vdd, 25.0});
  std::cout << "  chosen (lowest IR drop within constraints): X"
            << pick.drive << "   [paper: X" << paper_pick << "]\n\n";
}

} // namespace

int main() {
  std::cout << "=== S1/A3: sleep transistor (header) sizing ===\n\n";

  MultSetup m = make_mult_setup();
  {
    const RailParams rail = extract_rail_params(m.gated, m.cfg);
    const Time t_eval = m.model_gated.t_eval_setup();
    sizing_study("16-bit multiplier", m.model_gated, rail, m.e_dyn_gated,
                 t_eval, Current{8e-3}, 2);
  }
  CpuSetup c = make_cpu_setup();
  {
    const RailParams rail = extract_rail_params(c.gated.netlist, c.cfg);
    const Time t_eval = c.model_gated.t_eval_setup();
    sizing_study("SCM0 (Cortex-M0 substitute)", c.model_gated, rail,
                 c.e_dyn_gated, t_eval, Current{15e-3}, 4);
  }

  // A3: how the header bank size moves the SCPG overhead terms and the
  // convergence frequency (bigger banks switch more gate cap and leak
  // more when off, but recharge the rail faster).
  std::cout << "A3: header drive vs multiplier convergence frequency\n";
  TextTable t;
  t.header({"bank", "hdr gate cap", "off leak", "convergence"});
  // Each drive rebuilds and re-extracts a full netlist — independent
  // work, so the drives run as parallel jobs.
  const std::vector<int> drives = bench_lib().drives_of(CellKind::Header);
  const auto rows = parallel_map(drives.size(), 0, [&](std::size_t i) {
    const int drive = drives[i];
    Netlist nl = gen::make_multiplier(bench_lib(), 16);
    ScpgOptions opt;
    opt.header_drive = drive;
    apply_scpg(nl, opt);
    ScpgPowerModel model = ScpgPowerModel::extract(nl, m.cfg, m.e_dyn_gated);
    const RailParams rail = extract_rail_params(nl, m.cfg);
    const Frequency conv = convergence_frequency(model, GatingMode::Scpg50,
                                                 100.0_kHz, 40.0_MHz);
    return std::vector<std::string>{
        "4 x X" + std::to_string(drive),
        TextTable::num(in_fF(rail.hdr_gate_cap), 0) + " fF",
        TextTable::num(in_nW(rail.p_hdr_off), 0) + " nW",
        TextTable::num(in_MHz(conv), 1) + " MHz"};
  });
  for (const auto& row : rows) t.row(row);
  t.print(std::cout);
  return 0;
}
