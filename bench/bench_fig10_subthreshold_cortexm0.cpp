// Reproduces paper Fig 10: energy per operation vs supply voltage for the
// SCM0 under sub-threshold scaling.  The paper's observation: the denser
// logic pushes the minimum energy point to a HIGHER supply than the
// multiplier's (450 mV vs 310 mV) because leakage energy dominates
// earlier.
#include <iostream>

#include "common.hpp"

using namespace scpg;
using namespace scpg::benchx;

int main() {
  std::cout << "=== Fig 10: SCM0 energy/op vs VDD (sub-threshold sweep) "
               "===\n\n";
  CpuSetup s = make_cpu_setup();
  MepOptions opt;
  opt.v_lo = Voltage{0.16};
  opt.v_hi = Voltage{0.7};
  opt.points = 50;
  opt.jobs = 0;
  const MepResult r = analyze_mep(s.original.netlist, s.e_dyn_original,
                                  s.cfg.corner, opt);

  std::vector<double> vs, es;
  for (const MepPoint& p : r.sweep) {
    vs.push_back(in_mV(p.vdd));
    es.push_back(in_pJ(p.e_total()));
  }
  AsciiChart chart("energy per operation / pJ  vs  supply / mV");
  chart.series("total", vs, es);
  chart.print(std::cout);

  std::cout << "\nminimum energy point:\n";
  TextTable t;
  t.header({"", "VDD mV", "E/op pJ", "fmax MHz", "power uW"});
  t.row({"measured", TextTable::num(in_mV(r.minimum.vdd), 0),
         TextTable::num(in_pJ(r.minimum.e_total()), 2),
         TextTable::num(in_MHz(r.minimum.fmax), 1),
         TextTable::num(in_uW(r.minimum.power()), 1)});
  t.row({"paper", "450", "12.01", "24", "288.2"});
  t.print(std::cout);

  // The comparison the paper draws between the two figures.
  MultSetup m = make_mult_setup();
  MepOptions mopt;
  mopt.jobs = 0;
  const MepResult rm =
      analyze_mep(m.original, m.e_dyn_original, m.cfg.corner, mopt);
  std::cout << "\nMEP(SCM0) at "
            << TextTable::num(in_mV(r.minimum.vdd), 0)
            << " mV vs MEP(multiplier) at "
            << TextTable::num(in_mV(rm.minimum.vdd), 0) << " mV -> "
            << (r.minimum.vdd.v > rm.minimum.vdd.v
                    ? "denser logic pushes the MEP up (matches paper)"
                    : "MISMATCH with paper")
            << "\n";
  return 0;
}
