// Reproduces paper Table I: power and energy per operation of the
// sub-clock power gated 16-bit multiplier at VDD = 0.6 V, for
// {no power gating, SCPG @50% duty, SCPG-Max}, measured with the
// event-driven simulator under random operand streams.
#include <iostream>

#include "common.hpp"

using namespace scpg;
using namespace scpg::benchx;

int main() {
  std::cout << "=== Table I: 16-bit multiplier, VDD = 0.6 V ===\n\n";
  MultSetup s = make_mult_setup();
  std::cout << "designs: original " << s.original.num_cells()
            << " cells, SCPG " << s.gated.num_cells() << " cells ("
            << s.info.cells_gated << " gated, " << s.info.isolation_cells
            << " isolation)\n";
  std::cout << "dynamic energy/cycle (measured): "
            << TextTable::num(in_pJ(s.e_dyn_gated), 2) << " pJ\n\n";

  const double paper_saving_50[] = {39.9, 38.8, 29.0, 20.1, 9.1, 6.4, 5.2,
                                    3.3};
  const double paper_saving_max[] = {80.2, 78.5, 63.4, 48.8, 19.8, 9.3, 6.8,
                                     3.3};
  const double freqs_mhz[] = {0.01, 0.1, 1.0, 2.0, 5.0, 8.0, 10.0, 14.3};

  std::vector<TableRow> rows;
  for (double fm : freqs_mhz) {
    const Frequency f{fm * 1e6};
    TableRow r;
    r.f = f;
    r.p_none = measure_mult(s.original, s.cfg, f, 0.5, false).avg_power;
    const auto d50 = s.model_gated.duty_for(GatingMode::Scpg50, f);
    r.scpg50_feasible = d50.has_value();
    r.p_50 = measure_mult(s.gated, s.cfg, f, 0.5, false).avg_power;
    const auto dmax = s.model_gated.duty_for(GatingMode::ScpgMax, f);
    r.scpgmax_feasible = dmax.has_value();
    r.duty_max = dmax.value_or(0.5);
    r.p_max = r.scpgmax_feasible
                  ? measure_mult(s.gated, s.cfg, f, *dmax, false).avg_power
                  : r.p_50;
    rows.push_back(r);
  }
  print_rows("Table I (measured; duty = SCPG-Max clock-high fraction)",
             rows);

  std::cout << "\npaper-vs-measured savings (SCPG @50% / SCPG-Max):\n";
  TextTable cmp;
  cmp.header({"Clock", "paper 50%", "ours 50%", "paper Max", "ours Max"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    cmp.row({TextTable::num(in_MHz(rows[i].f),
                            in_MHz(rows[i].f) < 0.1 ? 3 : 2) +
                 " MHz",
             TextTable::num(paper_saving_50[i], 1) + "%",
             TextTable::num(rows[i].saving_50(), 1) + "%",
             TextTable::num(paper_saving_max[i], 1) + "%",
             TextTable::num(rows[i].saving_max(), 1) + "%"});
  }
  cmp.print(std::cout);
  std::cout << "\n(paper Table I absolute anchors: 29.23 uW no-PG at 10 kHz,"
               " 62.67 uW at 14.3 MHz)\n";
  return 0;
}
