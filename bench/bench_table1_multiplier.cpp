// Reproduces paper Table I: power and energy per operation of the
// sub-clock power gated 16-bit multiplier at VDD = 0.6 V, for
// {no power gating, SCPG @50% duty, SCPG-Max}, measured with the
// event-driven simulator under random operand streams.
#include <iostream>

#include "common.hpp"

using namespace scpg;
using namespace scpg::benchx;

int main() {
  std::cout << "=== Table I: 16-bit multiplier, VDD = 0.6 V ===\n\n";
  MultSetup s = make_mult_setup();
  std::cout << "designs: original " << s.original.num_cells()
            << " cells, SCPG " << s.gated.num_cells() << " cells ("
            << s.info.cells_gated << " gated, " << s.info.isolation_cells
            << " isolation)\n";
  std::cout << "dynamic energy/cycle (measured): "
            << TextTable::num(in_pJ(s.e_dyn_gated), 2) << " pJ\n\n";

  const double paper_saving_50[] = {39.9, 38.8, 29.0, 20.1, 9.1, 6.4, 5.2,
                                    3.3};
  const double paper_saving_max[] = {80.2, 78.5, 63.4, 48.8, 19.8, 9.3, 6.8,
                                     3.3};
  const double freqs_mhz[] = {0.01, 0.1, 1.0, 2.0, 5.0, 8.0, 10.0, 14.3};

  // All 8 frequencies x 3 modes run as one parallel engine sweep.
  const std::vector<TableRow> rows = measure_rows(
      s.original, s.gated, s.model_gated, mult_spec(s.cfg), freqs_mhz);
  print_rows("Table I (measured; duty = SCPG-Max clock-high fraction)",
             rows);

  std::cout << "\npaper-vs-measured savings (SCPG @50% / SCPG-Max):\n";
  TextTable cmp;
  cmp.header({"Clock", "paper 50%", "ours 50%", "paper Max", "ours Max"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    cmp.row({TextTable::num(in_MHz(rows[i].f),
                            in_MHz(rows[i].f) < 0.1 ? 3 : 2) +
                 " MHz",
             TextTable::num(paper_saving_50[i], 1) + "%",
             TextTable::num(rows[i].saving_50(), 1) + "%",
             TextTable::num(paper_saving_max[i], 1) + "%",
             TextTable::num(rows[i].saving_max(), 1) + "%"});
  }
  cmp.print(std::cout);
  std::cout << "\n(paper Table I absolute anchors: 29.23 uW no-PG at 10 kHz,"
               " 62.67 uW at 14.3 MHz)\n";
  return 0;
}
